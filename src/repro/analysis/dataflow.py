"""Generic worklist dataflow solver over the flattened CFG.

One solver serves every concrete analysis: a :class:`DataflowAnalysis`
supplies the direction, the boundary fact, the lattice join and the
per-block transfer function; :func:`solve` iterates node facts to a
fixpoint with a deterministic worklist.

Facts are ordinary immutable Python values compared with ``==`` —
``frozenset`` for the set-based analyses, tuples of pairs for the
constant lattice.  The solver itself is lattice-agnostic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from ..ir.values import BasicBlock
from .cfg import ENTRY, EXIT, ControlFlowGraph

Fact = TypeVar("Fact")


class DataflowAnalysis(Generic[Fact]):
    """One dataflow problem: direction, lattice and transfer."""

    #: "forward" propagates along control edges, "backward" against.
    direction: str = "forward"

    def boundary(self) -> Fact:
        """Fact at the flow source (ENTRY forward, EXIT backward)."""
        raise NotImplementedError

    def initial(self) -> Fact:
        """Optimistic starting fact for every other node."""
        raise NotImplementedError

    def join(self, facts: list[Fact]) -> Fact:
        """Combine facts arriving over several edges."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, fact: Fact) -> Fact:
        """Propagate ``fact`` through ``block``."""
        raise NotImplementedError

    def edge_transfer(self, src: int, dst: int, fact: Fact) -> Fact:
        """Adjust ``fact`` while it flows over the control edge
        ``(src, dst)``.

        The default is the identity; path-sensitive analyses (e.g. the
        range analysis refining on a branch condition's polarity)
        override it.  ``src``/``dst`` are always in *control* order,
        regardless of the analysis direction.
        """
        return fact


@dataclass
class DataflowResult(Generic[Fact]):
    """Fixpoint facts per CFG node.

    ``entry_facts[n]`` is the fact at the node's flow entry side and
    ``exit_facts[n]`` at its flow exit side — *flow* direction, so for
    a backward analysis ``entry_facts`` holds what is usually called
    the OUT set (facts at the block's control exit).
    """

    entry_facts: dict[int, Fact]
    exit_facts: dict[int, Fact]


def solve(cfg: ControlFlowGraph,
          analysis: DataflowAnalysis[Fact]) -> DataflowResult[Fact]:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint."""
    forward = analysis.direction == "forward"
    flow_preds = cfg.preds if forward else cfg.succs
    flow_succs = cfg.succs if forward else cfg.preds
    source = ENTRY if forward else EXIT

    order = cfg.nodes if forward else list(reversed(cfg.nodes))
    entry_facts: dict[int, Fact] = {}
    exit_facts: dict[int, Fact] = {
        node: analysis.initial() for node in cfg.nodes
    }
    exit_facts[source] = analysis.boundary()

    worklist: deque[int] = deque(order)
    queued = set(order)
    while worklist:
        node = worklist.popleft()
        queued.discard(node)

        incoming = [
            # Control-edge orientation: (p, node) forward, (node, p)
            # backward — edge_transfer always sees control order.
            analysis.edge_transfer(p, node, exit_facts[p])
            if forward
            else analysis.edge_transfer(node, p, exit_facts[p])
            for p in flow_preds.get(node, [])
        ]
        fact_in = analysis.join(incoming) if incoming else analysis.initial()
        entry_facts[node] = fact_in

        if node == source:
            fact_out = analysis.boundary()
        else:
            block = cfg.blocks.get(node)
            fact_out = (
                analysis.transfer(block, fact_in)
                if block is not None
                else fact_in  # the non-source synthetic node passes through
            )
        if fact_out != exit_facts[node]:
            exit_facts[node] = fact_out
            for succ in flow_succs.get(node, []):
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)
    return DataflowResult(entry_facts, exit_facts)


class SetUnionAnalysis(DataflowAnalysis[frozenset]):
    """Convenience base for may-analyses over ``frozenset`` facts."""

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, facts: list[frozenset]) -> frozenset:
        combined: frozenset = frozenset()
        for fact in facts:
            combined |= fact
        return combined


#: Sentinel for "no information yet" in must-analyses (top element).
UNIVERSE: Any = object()


class SetIntersectAnalysis(DataflowAnalysis):
    """Convenience base for must-analyses (available expressions).

    The optimistic initial fact is :data:`UNIVERSE` (everything holds),
    which intersection treats as the identity.
    """

    def initial(self):
        return UNIVERSE

    def join(self, facts: list):
        real = [fact for fact in facts if fact is not UNIVERSE]
        if not real:
            return UNIVERSE
        combined = real[0]
        for fact in real[1:]:
            combined &= fact
        return combined
