"""Sound value-range (interval) analysis over the CDFG.

Every value and every variable gets a closed interval ``[lo, hi]``
guaranteed to contain any value it can hold in *any* execution — the
derived-width property the datapath narrowing transform
(:mod:`repro.transforms.narrow`) and the ``range.*`` lint family build
on.  Soundness is anchored the same way the constant lattice's is: the
transfer functions over-approximate :func:`repro.sim.semantics.evaluate`
(the single semantics both simulators execute), so the analysis can
never claim a range the hardware would escape.

Design notes:

* **Lattice.**  A fact is one interval per declared variable (inputs
  included), canonicalized as a tuple in sorted variable order; ``None``
  is the optimistic "block not reached yet" bottom, mirroring
  :mod:`repro.analysis.constants`.  Join is the per-variable hull.
* **Wrap semantics.**  Each opcode computes a *raw* interval and then
  coerces it: if the raw interval fits the result type's representable
  range it is kept, otherwise the result is the full type range —
  exactly over-approximating ``IntType.wrap`` / ``FixedType.quantize``
  without trying to model a partial wrap.
* **Termination.**  Interval chains over fixed-point grids are long, so
  loop heads (back-edge targets in execution order) widen: a bound that
  grew since the last visit jumps straight to its type extreme.  After
  the fixpoint, a bounded number of plain *narrowing sweeps* re-applies
  the transfer without widening, recovering e.g. tight loop-counter
  bounds; iterating a monotone transfer from a post-fixpoint stays
  above the least fixpoint, so the sweeps cannot lose soundness.
* **Branch refinement.**  CFG edges annotated ``(cond id, polarity)``
  whose condition is a comparison of variable reads / constants refine
  the flowing fact through the solver's ``edge_transfer`` hook (an
  infeasible refinement marks the edge dead).  Refinement only applies
  to variables the condition block does not overwrite, so the compared
  value is still the one flowing out.
* **Constant seeding.**  Values the constant lattice proved are seeded
  as point intervals, so range facts are never weaker than constant
  facts.

Inputs default to their full declared-type range; ``assume`` supplies
trusted input contracts (e.g. the paper's sqrt operating interval
``X in <1/16, 1>``) that tighten the boundary fact — every consumer of
an assumed analysis inherits the contract as a proof obligation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..ir.cdfg import CDFG
from ..ir.opcodes import COMPARISONS, NEGATED_COMPARE, SWAPPED_COMPARE, OpKind
from ..ir.types import FixedType, IntType, Type
from ..ir.values import BasicBlock, Value
from .cfg import ENTRY, ControlFlowGraph, build_cfg
from .constants import ConstantsResult, constant_lattice
from .dataflow import DataflowAnalysis, solve

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.semantics import Number


def coerce(value: "Number", type_: Type) -> "Number":
    """:func:`repro.sim.semantics.coerce`, imported lazily — the ``sim``
    package pulls in the downstream pipeline, which imports us."""
    from ..sim.semantics import coerce as _coerce

    return _coerce(value, type_)


#: Plain downward re-applications of the transfer after the widened
#: fixpoint (see module docstring).
NARROWING_SWEEPS = 2

#: Shift amounts beyond this are not modelled precisely (the result
#: interval falls back to the full type range); keeps ``1 << amount``
#: from materializing astronomically large integers.
_SHIFT_CAP = 128


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` of values (``lo <= hi``)."""

    lo: Number
    hi: Number

    def contains(self, value: Number) -> bool:
        return self.lo <= value <= self.hi

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def type_interval(type_: Type) -> Interval:
    """The full representable range of a scalar type."""
    if isinstance(type_, IntType):
        return Interval(type_.min_value, type_.max_value)
    if isinstance(type_, FixedType):
        as_int = IntType(type_.width, type_.signed)
        return Interval(
            as_int.min_value / type_.scale, as_int.max_value / type_.scale
        )
    raise TypeError(f"no value range for non-scalar type {type_}")


def _trunc(value: Number) -> int:
    """Truncation toward zero — what ``int(v)`` does in ``coerce``."""
    return int(value)


def _stored(value: Number, scale: int) -> int:
    """Round-half-away-from-zero scaling — ``FixedType.quantize``'s
    pre-wrap stored integer."""
    scaled = value * scale
    return int(scaled + 0.5) if scaled >= 0 else -int(-scaled + 0.5)


def coerce_interval(raw: Interval, type_: Type) -> Interval:
    """Over-approximate ``coerce`` applied to every value in ``raw``.

    ``int()`` truncation and ``quantize``'s rounding are both monotone,
    so mapping the endpoints bounds the image — unless the stored range
    escapes the type, where wrap-around makes the image
    non-contiguous and the full type range is the answer.
    """
    if not (math.isfinite(raw.lo) and math.isfinite(raw.hi)):
        return type_interval(type_)
    if isinstance(type_, IntType):
        lo, hi = _trunc(raw.lo), _trunc(raw.hi)
        if type_.min_value <= lo and hi <= type_.max_value:
            return Interval(lo, hi)
        return type_interval(type_)
    if isinstance(type_, FixedType):
        as_int = IntType(type_.width, type_.signed)
        lo, hi = _stored(raw.lo, type_.scale), _stored(raw.hi, type_.scale)
        if as_int.min_value <= lo and hi <= as_int.max_value:
            return Interval(lo / type_.scale, hi / type_.scale)
        return type_interval(type_)
    raise TypeError(f"cannot coerce interval to non-scalar type {type_}")


def fits_type(interval: Interval, type_: Type) -> bool:
    """True when every value of ``interval`` is exactly representable
    in ``type_`` — no wrap, no re-quantization to a coarser grid."""
    if isinstance(type_, IntType):
        return (
            float(interval.lo).is_integer()
            and float(interval.hi).is_integer()
            and type_.min_value <= interval.lo
            and interval.hi <= type_.max_value
        )
    if isinstance(type_, FixedType):
        lo = interval.lo * type_.scale
        hi = interval.hi * type_.scale
        as_int = IntType(type_.width, type_.signed)
        return (
            float(lo).is_integer()
            and float(hi).is_integer()
            and as_int.min_value <= lo
            and hi <= as_int.max_value
        )
    return False


# ----------------------------------------------------------------------
# Per-opcode transfer
# ----------------------------------------------------------------------

def _bits_interval(iv: Interval, type_: Type) -> "Interval | None":
    """Bit-pattern interval for bitwise ops, or None when the pattern
    is not value-ordered (negative values)."""
    if iv.lo < 0:
        return None
    if isinstance(type_, IntType):
        return Interval(int(iv.lo), int(iv.hi))
    if isinstance(type_, FixedType):
        return Interval(_stored(iv.lo, type_.scale), _stored(iv.hi, type_.scale))
    return None


def _int_div_trunc(a: int, b: int) -> int:
    """Hardware-style truncating division, as the simulator computes it."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _compare_interval(kind: OpKind, a: Interval, b: Interval) -> Interval:
    """0/1 interval of a comparison, deciding it when operand intervals
    are ordered or disjoint."""
    true_ = Interval(1, 1)
    false_ = Interval(0, 0)
    if kind is OpKind.LT:
        if a.hi < b.lo:
            return true_
        if a.lo >= b.hi:
            return false_
    elif kind is OpKind.LE:
        if a.hi <= b.lo:
            return true_
        if a.lo > b.hi:
            return false_
    elif kind is OpKind.GT:
        if a.lo > b.hi:
            return true_
        if a.hi <= b.lo:
            return false_
    elif kind is OpKind.GE:
        if a.lo >= b.hi:
            return true_
        if a.hi < b.lo:
            return false_
    elif kind is OpKind.EQ:
        if a.is_point and b.is_point and a.lo == b.lo:
            return true_
        if a.hi < b.lo or b.hi < a.lo:
            return false_
    elif kind is OpKind.NE:
        if a.hi < b.lo or b.hi < a.lo:
            return true_
        if a.is_point and b.is_point and a.lo == b.lo:
            return false_
    return Interval(0, 1)


def op_interval(
    kind: OpKind,
    operand_intervals: list[Interval],
    operand_types: list[Type],
    result_type: Type | None,
    attrs: Mapping | None = None,
) -> tuple[Interval | None, Interval]:
    """Interval image of one operation.

    Returns ``(raw, result)``: the pre-coercion interval (None when the
    opcode has no meaningful raw stage — constants, comparisons,
    bitwise ops, or conservative fallbacks) and the sound interval of
    the coerced result.  Mirrors :func:`repro.sim.semantics.evaluate`
    case by case.
    """
    attrs = dict(attrs or {})

    if kind is OpKind.CONST:
        assert result_type is not None
        value = coerce(attrs["value"], result_type)
        return None, Interval(value, value)

    if kind in COMPARISONS:
        a, b = operand_intervals
        return None, _compare_interval(kind, a, b)

    assert result_type is not None
    full = type_interval(result_type)

    if kind is OpKind.MUX:
        cond, if_true, if_false = operand_intervals
        if cond.lo > 0 or cond.hi < 0:
            raw = if_true
        elif cond.is_point and cond.lo == 0:
            raw = if_false
        else:
            raw = if_true.hull(if_false)
        return raw, coerce_interval(raw, result_type)

    if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
        a, b = operand_intervals
        left = _bits_interval(a, operand_types[0])
        right = _bits_interval(b, operand_types[1])
        if left is None or right is None:
            return None, full
        if kind is OpKind.AND:
            raw = Interval(0, min(left.hi, right.hi))
        else:
            # a|b and a^b never set a bit above the highest operand bit.
            raw = Interval(0, (1 << max(left.hi, right.hi).bit_length()) - 1)
        return None, coerce_interval(raw, result_type)

    if kind is OpKind.NOT:
        return None, full

    raw: Interval | None = None
    if kind is OpKind.ADD:
        a, b = operand_intervals
        raw = Interval(a.lo + b.lo, a.hi + b.hi)
    elif kind is OpKind.SUB:
        a, b = operand_intervals
        raw = Interval(a.lo - b.hi, a.hi - b.lo)
    elif kind is OpKind.MUL:
        a, b = operand_intervals
        corners = [x * y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
        raw = Interval(min(corners), max(corners))
    elif kind is OpKind.DIV:
        a, b = operand_intervals
        if b.lo <= 0 <= b.hi:
            return None, full  # divide-by-zero path raises at runtime
        if isinstance(result_type, IntType):
            corners = [
                _int_div_trunc(int(x), int(y))
                for x in (a.lo, a.hi)
                for y in (b.lo, b.hi)
            ]
        else:
            corners = [x / y for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
        raw = Interval(min(corners), max(corners))
    elif kind is OpKind.MOD:
        a, b = operand_intervals
        if not all(isinstance(t, IntType) for t in operand_types):
            return None, full
        divisor_bound = max(abs(b.lo), abs(b.hi)) - 1
        if divisor_bound < 0:
            return None, full
        dividend_bound = max(abs(a.lo), abs(a.hi))
        bound = min(divisor_bound, dividend_bound)
        lo = 0 if a.lo >= 0 else -bound
        hi = 0 if a.hi <= 0 else bound
        raw = Interval(lo, hi)
    elif kind is OpKind.INC:
        a = operand_intervals[0]
        raw = Interval(a.lo + 1, a.hi + 1)
    elif kind is OpKind.DEC:
        a = operand_intervals[0]
        raw = Interval(a.lo - 1, a.hi - 1)
    elif kind is OpKind.NEG:
        a = operand_intervals[0]
        raw = Interval(-a.hi, -a.lo)
    elif kind in (OpKind.SHL, OpKind.SHR):
        a, b = operand_intervals
        amount_hi = _trunc(b.hi)
        if amount_hi < 0 or amount_hi > _SHIFT_CAP:
            return None, full
        amount_lo = max(0, _trunc(b.lo))  # negative amounts raise
        amounts = (amount_lo, amount_hi)
        if kind is OpKind.SHL:
            corners = [x * (1 << n) for x in (a.lo, a.hi) for n in amounts]
        elif isinstance(operand_types[0], FixedType):
            corners = [x / (1 << n) for x in (a.lo, a.hi) for n in amounts]
        else:
            corners = [int(x) >> n for x in (a.lo, a.hi) for n in amounts]
        raw = Interval(min(corners), max(corners))
    else:
        return None, full

    if not (math.isfinite(raw.lo) and math.isfinite(raw.hi)):
        return None, full
    return raw, coerce_interval(raw, result_type)


# ----------------------------------------------------------------------
# Branch refinement
# ----------------------------------------------------------------------

def _strict_upper(bound: Number, type_: Type) -> Number:
    """Largest value of ``type_`` satisfying ``x < bound`` (sound)."""
    if isinstance(type_, IntType):
        return math.ceil(bound) - 1
    return bound  # non-strict fallback on the fixed-point grid


def _strict_lower(bound: Number, type_: Type) -> Number:
    if isinstance(type_, IntType):
        return math.floor(bound) + 1
    return bound


def refine_interval(
    iv: Interval, kind: OpKind, rhs: Interval, type_: Type
) -> Interval | None:
    """Refine ``iv`` knowing ``x <kind> rhs`` holds for ``x: type_``.

    Returns None when the constraint is infeasible (the refining edge
    is dead).
    """
    lo, hi = iv.lo, iv.hi
    if kind is OpKind.LT:
        hi = min(hi, _strict_upper(rhs.hi, type_))
    elif kind is OpKind.LE:
        hi = min(hi, rhs.hi)
    elif kind is OpKind.GT:
        lo = max(lo, _strict_lower(rhs.lo, type_))
    elif kind is OpKind.GE:
        lo = max(lo, rhs.lo)
    elif kind is OpKind.EQ:
        lo = max(lo, rhs.lo)
        hi = min(hi, rhs.hi)
    elif kind is OpKind.NE:
        if rhs.is_point and isinstance(type_, IntType):
            if lo == rhs.lo:
                lo = lo + 1
            if hi == rhs.lo:
                hi = hi - 1
    if lo > hi:
        return None
    return Interval(lo, hi)


# ----------------------------------------------------------------------
# The dataflow problem
# ----------------------------------------------------------------------

#: A refinement recipe attached to one CFG edge: refine ``var`` with
#: ``x <kind> rhs`` where rhs is ("const", Interval) or ("var", name).
_Refinement = tuple[str, OpKind, tuple[str, object]]


class _Ranges(DataflowAnalysis):
    direction = "forward"

    def __init__(
        self,
        cdfg: CDFG,
        cfg: ControlFlowGraph,
        constants: ConstantsResult | None,
        assume: Mapping[str, tuple[Number, Number]] | None,
    ) -> None:
        self._cdfg = cdfg
        self._constants = constants
        self._assume = dict(assume or {})
        self._types = dict(cdfg.variables)  # inputs/outputs included
        self._order = sorted(self._types)
        self._index = {var: i for i, var in enumerate(self._order)}
        self._type_ivs = {
            var: type_interval(t) for var, t in self._types.items()
        }
        order = {node: i for i, node in enumerate(cfg.nodes)}
        # Every CFG cycle crosses a back edge in execution order, so
        # widening at their targets guarantees termination.
        self._widen_nodes = {
            dst
            for src, dsts in cfg.succs.items()
            for dst in dsts
            if order.get(dst, 0) <= order.get(src, 0) and dst in cfg.blocks
        }
        self._widen_memo: dict[int, tuple[Interval, ...]] = {}
        self.widen_enabled = True
        self._refinements = self._collect_refinements(cfg)

    # Facts: tuple of one Interval per variable, in self._order; None
    # means the node has not been reached.

    def boundary(self):
        env: dict[str, Interval] = {}
        for var, type_ in self._types.items():
            zero = coerce(0, type_)
            env[var] = Interval(zero, zero)
        for port in self._cdfg.inputs:
            iv = self._type_ivs[port.name]
            if port.name in self._assume:
                lo, hi = self._assume[port.name]
                assumed = coerce_interval(Interval(lo, hi), port.type)
                iv = assumed.intersect(iv) or iv
            env[port.name] = iv
        return tuple(env[var] for var in self._order)

    def initial(self):
        return None

    def join(self, facts: list):
        reached = [fact for fact in facts if fact is not None]
        if not reached:
            return None
        merged = list(reached[0])
        for fact in reached[1:]:
            merged = [a.hull(b) for a, b in zip(merged, fact)]
        return tuple(merged)

    def transfer(self, block: BasicBlock, fact):
        if fact is None:
            return None
        if self.widen_enabled and block.id in self._widen_nodes:
            fact = self._widen(block.id, fact)
        env = dict(zip(self._order, fact))
        local = self._evaluate_block(block, env)
        for op in block.ops:
            if op.kind is OpKind.VAR_WRITE:
                var = op.attrs["var"]
                iv = self._operand_interval(op.operands[0], local)
                env[var] = coerce_interval(iv, self._types[var])
        return tuple(env[var] for var in self._order)

    def edge_transfer(self, src: int, dst: int, fact):
        if fact is None:
            return None
        recipes = self._refinements.get((src, dst))
        if not recipes:
            return fact
        values = list(fact)
        for var, kind, rhs in recipes:
            if rhs[0] == "const":
                rhs_iv = rhs[1]
            else:
                rhs_iv = values[self._index[rhs[1]]]
            index = self._index[var]
            refined = refine_interval(
                values[index], kind, rhs_iv, self._types[var]
            )
            if refined is None:
                return None  # the refining edge is infeasible
            values[index] = refined
        return tuple(values)

    # ------------------------------------------------------------------

    def _widen(self, node: int, fact):
        prev = self._widen_memo.get(node)
        if prev is None:
            self._widen_memo[node] = fact
            return fact
        widened = []
        for var, new, old in zip(self._order, fact, prev):
            extreme = self._type_ivs[var]
            lo = new.lo if new.lo >= old.lo else extreme.lo
            hi = new.hi if new.hi <= old.hi else extreme.hi
            widened.append(Interval(lo, hi))
        out = tuple(widened)
        self._widen_memo[node] = out
        return out

    def _operand_interval(
        self, value: Value, local: dict[int, Interval]
    ) -> Interval:
        iv = local.get(value.id)
        if iv is not None:
            return iv
        # Cross-block operand: fall back to its type's range.
        return type_interval(value.type)

    def _evaluate_block(
        self,
        block: BasicBlock,
        env: dict[str, Interval],
        seed: dict[int, Interval] | None = None,
        raw_out: dict[int, Interval] | None = None,
    ) -> dict[int, Interval]:
        """Value id → interval for every result-producing op."""
        local: dict[int, Interval] = dict(seed or {})
        for op in block.ops:
            if op.result is None:
                continue
            rid = op.result.id
            if op.kind is OpKind.VAR_READ:
                local[rid] = env[op.attrs["var"]]
                continue
            if op.kind is OpKind.LOAD:
                local[rid] = type_interval(op.result.type)
                continue
            if self._constants is not None:
                literal = self._constants.values.get(rid)
                if literal is not None and op.kind is not OpKind.CONST:
                    local[rid] = Interval(literal, literal)
                    continue
            operands = [
                self._operand_interval(value, local) for value in op.operands
            ]
            raw, result = op_interval(
                op.kind,
                operands,
                [value.type for value in op.operands],
                op.result.type,
                op.attrs,
            )
            local[rid] = result
            if raw is not None and raw_out is not None:
                raw_out[rid] = raw
        return local

    def _collect_refinements(
        self, cfg: ControlFlowGraph
    ) -> dict[tuple[int, int], list[_Refinement]]:
        refinements: dict[tuple[int, int], list[_Refinement]] = {}
        for (src, dst), (cond_id, polarity) in cfg.edge_conds.items():
            block = cfg.blocks.get(src)
            if block is None:
                continue
            compare = None
            for op in block.ops:
                if op.result is not None and op.result.id == cond_id:
                    compare = op
                    break
            if compare is None or compare.kind not in COMPARISONS:
                continue
            effective = (
                compare.kind if polarity else NEGATED_COMPARE[compare.kind]
            )
            writes = block.var_writes()
            written = set(writes)
            # A value the block writes back verbatim (same type, so the
            # write's coercion is the identity) IS the variable's exit
            # value — the post-test loop pattern `I := I + 1; until
            # I + 1 > N` refines through this.
            sunk = {
                op.operands[0].id: var
                for var, op in writes.items()
                if op.operands[0].type == self._types[var]
            }

            def describe(value: Value):
                producer = value.producer
                if producer.kind is OpKind.CONST:
                    literal = coerce(producer.attrs["value"], value.type)
                    return "const", Interval(literal, literal)
                if (
                    producer.kind is OpKind.VAR_READ
                    and producer.block is block
                    and producer.attrs["var"] not in written
                ):
                    # The block-entry read still equals the exit value,
                    # so refining the outgoing fact is sound.
                    return "var", producer.attrs["var"]
                if value.id in sunk:
                    return "var", sunk[value.id]
                return None

            lhs = describe(compare.operands[0])
            rhs = describe(compare.operands[1])
            recipes: list[_Refinement] = []
            if lhs is not None and lhs[0] == "var" and rhs is not None:
                recipes.append((lhs[1], effective, rhs))
            if rhs is not None and rhs[0] == "var" and lhs is not None:
                recipes.append((rhs[1], SWAPPED_COMPARE[effective], lhs))
            if recipes:
                refinements[(src, dst)] = recipes
        return refinements


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

@dataclass
class RangesResult:
    """Fixpoint intervals of one CDFG.

    Attributes:
        env_in: block id → variable environment at block entry
            (None = the block is unreachable).
        values: value id → sound interval of the value (total over every
            result-producing op; conservative in unreachable blocks).
        raw_values: value id → *pre-coercion* interval of arithmetic
            ops in reachable blocks — what the result would be on an
            unbounded datapath; disjointness from the result type's
            range proves a guaranteed wrap.
        variables: variable → hull of every value it ever holds
            (initialization and all writes), the narrowing transform's
            register-width bound.
    """

    env_in: dict[int, dict[str, Interval] | None]
    values: dict[int, Interval]
    raw_values: dict[int, Interval]
    variables: dict[str, Interval]


def range_analysis(
    cdfg: CDFG,
    cfg: ControlFlowGraph | None = None,
    constants: ConstantsResult | None = None,
    assume: Mapping[str, tuple[Number, Number]] | None = None,
) -> RangesResult:
    """Solve the interval lattice for every block of ``cdfg``.

    Args:
        cdfg: the procedure to analyze.
        cfg: optional prebuilt CFG (rebuilt otherwise).
        constants: optional prebuilt constant lattice (resolved
            otherwise) used to seed point intervals.
        assume: optional trusted input contracts, port name →
            ``(lo, hi)``; unknown names are ignored.  Results are only
            sound for executions whose inputs honor the contract.
    """
    cfg = cfg or build_cfg(cdfg)
    constants = constants or constant_lattice(cdfg, cfg)
    analysis = _Ranges(cdfg, cfg, constants, assume)
    result = solve(cfg, analysis)
    entry_facts = dict(result.entry_facts)
    exit_facts = dict(result.exit_facts)

    # Bounded narrowing: re-apply the transfer without widening to
    # recover precision (tight loop-counter bounds) lost to the jump to
    # type extremes.  Monotone descent from a post-fixpoint is sound.
    analysis.widen_enabled = False
    for _ in range(NARROWING_SWEEPS):
        changed = False
        for node in cfg.nodes:
            if node == ENTRY:
                continue
            preds = cfg.preds.get(node, [])
            incoming = [
                analysis.edge_transfer(p, node, exit_facts[p]) for p in preds
            ]
            fact_in = analysis.join(incoming) if incoming else None
            entry_facts[node] = fact_in
            block = cfg.blocks.get(node)
            fact_out = (
                analysis.transfer(block, fact_in)
                if block is not None
                else fact_in
            )
            if fact_out != exit_facts[node]:
                exit_facts[node] = fact_out
                changed = True
        if not changed:
            break

    env_in: dict[int, dict[str, Interval] | None] = {}
    values: dict[int, Interval] = {}
    raw_values: dict[int, Interval] = {}
    order = analysis._order
    # Evaluate every block once against the fixpoint environment,
    # carrying value intervals across blocks for cross-block operands.
    carried: dict[int, Interval] = {}
    for block_id, block in cfg.blocks.items():
        fact = entry_facts.get(block_id)
        if fact is None:
            env_in[block_id] = None
            for op in block.ops:
                if op.result is None:
                    continue
                values[op.result.id] = (
                    Interval(0, 1)
                    if op.kind in COMPARISONS
                    else type_interval(op.result.type)
                )
            continue
        env = dict(zip(order, fact))
        env_in[block_id] = env
        local = analysis._evaluate_block(
            block, env, seed=carried, raw_out=raw_values
        )
        carried = local
        for op in block.ops:
            if op.result is not None:
                values[op.result.id] = local[op.result.id]

    variables: dict[str, Interval] = dict(
        zip(order, analysis.boundary())
    )
    for node, fact in exit_facts.items():
        if fact is None or node not in cfg.blocks:
            continue
        for var, iv in zip(order, fact):
            variables[var] = variables[var].hull(iv)
    return RangesResult(env_in, values, raw_values, variables)
