"""Control-flow-graph view of a CDFG's structured region tree.

The IR keeps control flow structured (sequences, branches, loops —
:mod:`repro.ir.cdfg`), which is what scheduling wants.  Dataflow
analysis wants the classic flattened form instead: basic blocks as
nodes, control transfers as edges, plus synthetic ``ENTRY``/``EXIT``
nodes so boundary conditions have somewhere to live.  This module
derives that view without mutating the region tree.

Branch edges carry an optional *annotation* ``(cond value id,
polarity)`` — the edge is taken when the condition evaluates to the
polarity.  The constant-condition lint uses annotations to prune edges
proven dead and re-run reachability (see
:meth:`ControlFlowGraph.reachable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..ir.values import BasicBlock

#: Synthetic node ids (real block ids are positive).
ENTRY = -1
EXIT = -2

#: Edge annotation: (condition value id, polarity the edge is taken on).
EdgeCond = tuple[int, bool]

#: A region exit: the block control leaves from, plus the annotation of
#: the outgoing edge (None = unconditional fall-through).
_Exit = tuple[int, EdgeCond | None]


@dataclass
class ControlFlowGraph:
    """Flattened control flow of one CDFG."""

    cdfg: CDFG
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    succs: dict[int, list[int]] = field(default_factory=dict)
    preds: dict[int, list[int]] = field(default_factory=dict)
    edge_conds: dict[tuple[int, int], EdgeCond] = field(default_factory=dict)

    @property
    def nodes(self) -> list[int]:
        """All node ids: ENTRY, every block in execution order, EXIT."""
        return [ENTRY, *self.blocks.keys(), EXIT]

    def successors(self, node: int) -> list[int]:
        return self.succs.get(node, [])

    def predecessors(self, node: int) -> list[int]:
        return self.preds.get(node, [])

    def add_edge(self, src: int, dst: int,
                 cond: EdgeCond | None = None) -> None:
        if dst in self.succs.setdefault(src, []):
            # A parallel edge (e.g. both arms of an if fall through to
            # the same block): reachable either way, so any pruning
            # annotation must be dropped.
            if self.edge_conds.get((src, dst)) != cond:
                self.edge_conds.pop((src, dst), None)
            return
        self.succs[src].append(dst)
        self.preds.setdefault(dst, []).append(src)
        if cond is not None:
            self.edge_conds[(src, dst)] = cond

    def reachable(self,
                  known_conds: dict[int, bool] | None = None) -> set[int]:
        """Nodes reachable from ENTRY.

        Args:
            known_conds: condition value id → proven constant value.
                Annotated edges contradicting a proven condition are
                skipped, so blocks only reachable through them count as
                unreachable.
        """
        known = known_conds or {}
        seen = {ENTRY}
        frontier = [ENTRY]
        while frontier:
            node = frontier.pop()
            for succ in self.successors(node):
                annotation = self.edge_conds.get((node, succ))
                if annotation is not None:
                    cond_id, polarity = annotation
                    if cond_id in known and known[cond_id] != polarity:
                        continue  # edge proven dead
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen


def build_cfg(cdfg: CDFG) -> ControlFlowGraph:
    """Derive the flattened CFG of ``cdfg``'s region tree."""
    cfg = ControlFlowGraph(cdfg)
    for block in cdfg.blocks():
        cfg.blocks[block.id] = block
        cfg.succs.setdefault(block.id, [])
        cfg.preds.setdefault(block.id, [])
    cfg.succs.setdefault(ENTRY, [])
    cfg.preds.setdefault(EXIT, [])

    def connect(exits: list[_Exit], target: int) -> None:
        for block_id, annotation in exits:
            cfg.add_edge(block_id, target, annotation)

    def build(region: Region) -> tuple[int | None, list[_Exit]]:
        """Wire ``region`` internally; return (entry node, exits).

        An empty region returns ``(None, [])`` — the caller treats it
        as a pass-through.
        """
        if isinstance(region, BlockRegion):
            block_id = region.block.id
            return block_id, [(block_id, None)]

        if isinstance(region, SeqRegion):
            entry: int | None = None
            pending: list[_Exit] = []
            for item in region.items:
                item_entry, item_exits = build(item)
                if item_entry is None:
                    continue
                if entry is None:
                    entry = item_entry
                else:
                    connect(pending, item_entry)
                pending = item_exits
            return entry, pending

        if isinstance(region, IfRegion):
            cond_block = region.cond_block.id
            cond_id = region.cond.id
            exits: list[_Exit] = []
            then_entry, then_exits = build(region.then_region)
            if then_entry is None:
                exits.append((cond_block, (cond_id, True)))
            else:
                cfg.add_edge(cond_block, then_entry, (cond_id, True))
                exits.extend(then_exits)
            if region.else_region is None:
                exits.append((cond_block, (cond_id, False)))
            else:
                else_entry, else_exits = build(region.else_region)
                if else_entry is None:
                    exits.append((cond_block, (cond_id, False)))
                else:
                    cfg.add_edge(cond_block, else_entry, (cond_id, False))
                    exits.extend(else_exits)
            return cond_block, exits

        if isinstance(region, LoopRegion):
            return _build_loop(region)

        raise TypeError(f"unknown region {region!r}")  # pragma: no cover

    def _build_loop(region: LoopRegion) -> tuple[int | None, list[_Exit]]:
        cond_id = region.cond.id
        stay = (cond_id, not region.exit_on_true)
        leave = (cond_id, region.exit_on_true)

        if region.test_in_body:
            # Post-test loop: the test block is the body's last block;
            # its fall-throughs become the back edge and the loop exit.
            body_entry, body_exits = build(region.body)
            if body_entry is None:  # pragma: no cover - validated earlier
                return None, []
            exits: list[_Exit] = []
            for block_id, annotation in body_exits:
                # A pre-annotated exit (a branch inside the body falling
                # out) cannot carry two conditions; keep it unannotated
                # so reachability stays conservative.
                back = stay if annotation is None else None
                out = leave if annotation is None else None
                cfg.add_edge(block_id, body_entry, back)
                exits.append((block_id, out))
            return body_entry, exits

        # Pre-test loop: test runs first; body loops back to the test.
        test_block = region.test_block.id
        body_entry, body_exits = build(region.body)
        if body_entry is None:
            cfg.add_edge(test_block, test_block, stay)
        else:
            cfg.add_edge(test_block, body_entry, stay)
            connect(body_exits, test_block)
        return test_block, [(test_block, leave)]

    entry, exits = build(cdfg.body)
    if entry is None:
        cfg.add_edge(ENTRY, EXIT)
    else:
        cfg.add_edge(ENTRY, entry)
        connect(exits, EXIT)
    return cfg
