"""Constant lattice analysis over the CDFG.

Per variable, the classic three-level lattice:

* **TOP** — no path has assigned the variable yet (optimistic);
* a literal — every path assigns that one value;
* **BOTTOM** — paths disagree, or the value is not statically known.

The transfer function symbolically executes a block with
:func:`repro.sim.semantics.evaluate` — the same semantics the
simulators and the constant-folding transform use, so the analysis can
never "know" a value the hardware would disagree with.

:func:`constant_of` is the block-local primitive the constant-folding
transform consumes (the literal of a CONST-produced value);
:func:`evaluated_conditions` is what the constant-condition and
unreachable-block lints consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..ir.cdfg import CDFG, IfRegion, LoopRegion
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock, Value
from .cfg import ControlFlowGraph, build_cfg
from .dataflow import DataflowAnalysis, solve


def constant_of(value: Value) -> Any | None:
    """The literal of a CONST-produced value, or None.

    The block-local constant primitive: transforms fold on it, and the
    lattice transfer seeds its environment from it.
    """
    if value.producer.kind is OpKind.CONST:
        return value.producer.attrs["value"]
    return None


class _Top:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "TOP"


class _Bottom:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BOTTOM"


#: Lattice extremes.  Facts map variable names to TOP / a literal /
#: BOTTOM; a variable missing from a fact is TOP.
TOP = _Top()
BOTTOM = _Bottom()


def _meet(a: Any, b: Any) -> Any:
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    return a if a == b else BOTTOM


@dataclass
class ConstantsResult:
    """Per-block variable environments (entry side) plus the evaluated
    value of every op whose inputs were statically known."""

    env_in: dict[int, dict[str, Any]]
    values: dict[int, Any]  # value id → literal (only when known)


class _Constants(DataflowAnalysis):
    direction = "forward"

    def __init__(self, cdfg: CDFG) -> None:
        self._inputs = {port.name for port in cdfg.inputs}

    # Facts are canonicalized tuples of (var, literal) pairs — BOTTOM
    # vars are dropped on canonicalization, TOP vars never enter.

    def boundary(self):
        return ()  # inputs and uninitialized vars are unknown (BOTTOM)

    def initial(self):
        return None  # None = TOP fact: node not reached yet

    def join(self, facts: list):
        reached = [dict(fact) for fact in facts if fact is not None]
        if not reached:
            return None
        merged: dict[str, Any] = {}
        every = set(reached[0])
        for env in reached[1:]:
            every &= set(env)
        for var in every:
            combined = reached[0][var]
            for env in reached[1:]:
                combined = _meet(combined, env[var])
            if combined is not BOTTOM and combined is not TOP:
                merged[var] = combined
        return tuple(sorted(merged.items(), key=lambda item: item[0]))

    def transfer(self, block: BasicBlock, fact):
        if fact is None:
            return None
        env = dict(fact)
        local = self._evaluate_block(block, env)
        for op in block.ops:
            if op.kind is OpKind.VAR_WRITE:
                literal = local.get(op.operands[0].id, BOTTOM)
                var = op.attrs["var"]
                if literal is BOTTOM:
                    env.pop(var, None)
                else:
                    env[var] = literal
        return tuple(sorted(env.items(), key=lambda item: item[0]))

    def _evaluate_block(self, block: BasicBlock,
                        env: dict[str, Any]) -> dict[int, Any]:
        """Value id → literal for ops computable from ``env``."""
        from ..sim.semantics import evaluate

        local: dict[int, Any] = {}
        for op in block.ops:
            if op.result is None:
                continue
            if op.kind is OpKind.CONST:
                local[op.result.id] = op.attrs["value"]
            elif op.kind is OpKind.VAR_READ:
                var = op.attrs["var"]
                if var in env and var not in self._inputs:
                    local[op.result.id] = env[var]
            elif op.kind in _EVALUATABLE:
                operands = [
                    local.get(operand.id, BOTTOM) for operand in op.operands
                ]
                if any(value is BOTTOM for value in operands):
                    continue
                try:
                    local[op.result.id] = evaluate(
                        op.kind,
                        operands,
                        [operand.type for operand in op.operands],
                        op.result.type,
                        op.attrs,
                    )
                except Exception:
                    continue  # division by zero etc. stays a runtime event
        return local


#: Pure kinds :func:`repro.sim.semantics.evaluate` can execute at
#: compile time — shared with the constant-folding transform.
EVALUATABLE_KINDS = frozenset(
    {
        OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
        OpKind.INC, OpKind.DEC, OpKind.NEG, OpKind.SHL, OpKind.SHR,
        OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
        OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE,
        OpKind.MUX,
    }
)
_EVALUATABLE = EVALUATABLE_KINDS


def constant_lattice(
    cdfg: CDFG, cfg: ControlFlowGraph | None = None
) -> ConstantsResult:
    """Solve the constant lattice for every block of ``cdfg``."""
    cfg = cfg or build_cfg(cdfg)
    analysis = _Constants(cdfg)
    result = solve(cfg, analysis)
    env_in: dict[int, dict[str, Any]] = {}
    values: dict[int, Any] = {}
    for block_id, block in cfg.blocks.items():
        fact = result.entry_facts.get(block_id)
        env = dict(fact) if fact else {}
        env_in[block_id] = env
        # Re-evaluate once against the *fixpoint* environment — values
        # collected mid-iteration would reflect optimistic early facts.
        values.update(analysis._evaluate_block(block, env))
    return ConstantsResult(env_in, values)


def evaluated_conditions(
    cdfg: CDFG,
    cfg: ControlFlowGraph | None = None,
    constants: ConstantsResult | None = None,
) -> dict[int, bool]:
    """Region conditions proven constant: cond value id → truth value."""
    constants = constants or constant_lattice(cdfg, cfg)
    known: dict[int, bool] = {}
    for region in cdfg.body.walk():
        if not isinstance(region, (IfRegion, LoopRegion)):
            continue
        literal = constants.values.get(region.cond.id)
        if literal is not None:
            known[region.cond.id] = bool(literal)
    return known
