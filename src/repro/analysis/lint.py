"""The whole-pipeline linter: every rule family, one driver.

Three rule families, each consuming the shared analyses:

* **source rules** (``src.*``, ``lang.*``) — run on the *unoptimized*
  CDFG, so findings point at what the user wrote, not at what the
  optimizer left behind: read-before-write (reaching definitions),
  unreachable blocks and constant conditions (constant lattice +
  condition-pruned CFG reachability), dead stores (liveness), unused
  variables;
* **design rules** (``sched.*``, ``alloc.*``) — run on a synthesized
  design: scheduled use-before-def (the dependence-edge twin of
  ``Schedule.validate``), register sharing with overlapping lifetimes,
  and values wider than the variable register that carries them;
* **netlist/controller rules** (``net.*``, ``fsm.*``) — run on the
  structural netlist and the FSM: combinational loops (SCC over the
  combinational subgraph), multiply-driven ports, structural width
  mismatches, floating inputs, unreachable states.

:func:`lint_source` is the end-to-end driver the ``repro lint`` CLI
verb calls: compile with a diagnostic sink, lint the CDFG, synthesize a
separate copy (the engine optimizes in place), lint the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..allocation.lifetimes import compute_lifetimes
from ..controller.fsm import FSM
from ..datapath.netlist import DatapathNetlist, build_netlist
from ..errors import HLSError
from ..ir.cdfg import CDFG, IfRegion, LoopRegion
from ..ir.opcodes import OpKind
from ..ir.types import bit_width, is_scalar
from .cfg import build_cfg
from .constants import constant_lattice, evaluated_conditions
from .diagnostics import Diagnostic, DiagnosticSink
from .liveness import live_out_variables, variable_liveness
from .reaching import UNINIT, def_use_chains


# ----------------------------------------------------------------------
# Options and report
# ----------------------------------------------------------------------


@dataclass
class LintOptions:
    """Knobs of one lint run (mirrors the synthesis knobs that affect
    what gets checked)."""

    procedure: str | None = None
    scheduler: str = "list"
    allocator: str = "left-edge"
    #: Resource model for the design-level rules.  "typed" (distinct
    #: adder/multiplier/… classes, the realistic datapath) is the
    #: default: under the single-class universal model, index-monotone
    #: FU sharing can never close a combinational cycle, so net.* rules
    #: would have nothing to find.
    model: str = "typed"
    optimize: bool = True


@dataclass
class LintReport:
    """All diagnostics of one lint run, ordered by source position."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def count(self, severity: str) -> int:
        return sum(
            1 for diag in self.diagnostics if diag.severity == severity
        )

    @property
    def exit_code(self) -> int:
        """2 with errors present, 1 with warnings only, 0 when clean."""
        if self.count("error"):
            return 2
        if self.count("warning"):
            return 1
        return 0

    def render(self) -> str:
        lines = [f"lint report for '{self.name}':"]
        if not self.diagnostics:
            lines.append("  clean — no findings")
        for diag in self.diagnostics:
            lines.append(f"  {diag.render()}")
        lines.append(
            f"{self.count('error')} error(s), "
            f"{self.count('warning')} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "design": self.name,
            "errors": self.count("error"),
            "warnings": self.count("warning"),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }


# ----------------------------------------------------------------------
# Source / CDFG rules
# ----------------------------------------------------------------------


def lint_cdfg(cdfg: CDFG, sink: DiagnosticSink) -> None:
    """Run the source-level rule family on (ideally unoptimized) IR."""
    cfg = build_cfg(cdfg)
    source_map = cdfg.source_map

    # src.read-before-write -------------------------------------------
    chains = def_use_chains(cdfg, cfg)
    for block in cfg.blocks.values():
        for op in block.ops:
            if op.kind is not OpKind.VAR_READ:
                continue
            if chains.boundary_reads.get(op.id) != UNINIT:
                continue
            var = op.attrs["var"]
            certain = not chains.defs_of.get(op.id)
            diag = Diagnostic(
                "src.read-before-write",
                "error" if certain else "warning",
                (
                    f"variable {var!r} is read before it is written"
                    if certain
                    else f"variable {var!r} may be read before it is "
                    f"written"
                ),
                location=source_map.get(op.id),
                subject=var,
            )
            sink.emit(diag)

    # src.const-condition / src.unreachable-block ---------------------
    constants = constant_lattice(cdfg, cfg)
    known = evaluated_conditions(cdfg, cfg, constants)
    for region in cdfg.body.walk():
        if not isinstance(region, (IfRegion, LoopRegion)):
            continue
        literal = known.get(region.cond.id)
        if literal is None:
            continue
        what = "loop" if isinstance(region, LoopRegion) else "branch"
        sink.warning(
            "src.const-condition",
            f"{what} condition is always {literal}",
            location=source_map.get(region.cond.producer.id),
        )
    reachable = cfg.reachable(known)
    for block_id, block in cfg.blocks.items():
        if block_id in reachable:
            continue
        location = next(
            (
                source_map[op.id]
                for op in block.ops
                if op.id in source_map
            ),
            None,
        )
        sink.warning(
            "src.unreachable-block",
            f"block {block.name} is unreachable "
            f"(a controlling condition is constant)",
            location=location,
            subject=block.name,
        )

    # src.dead-store ---------------------------------------------------
    liveness = variable_liveness(cdfg, cfg)
    for block_id, block in cfg.blocks.items():
        if block_id not in reachable:
            continue  # already reported as unreachable
        live_out = liveness.live_out[block_id]
        for op in block.ops:
            if op.kind is not OpKind.VAR_WRITE:
                continue
            var = op.attrs["var"]
            if var in live_out:
                continue
            sink.warning(
                "src.dead-store",
                f"value assigned to {var!r} is never read",
                location=source_map.get(op.id),
                subject=var,
            )

    # src.unused-var ---------------------------------------------------
    ports = {port.name for port in cdfg.inputs}
    ports |= {port.name for port in cdfg.outputs}
    referenced = {
        op.attrs["var"]
        for op in cdfg.operations()
        if op.kind in (OpKind.VAR_READ, OpKind.VAR_WRITE)
    }
    for var in sorted(cdfg.variables):
        if var in ports or var in referenced:
            continue
        sink.warning(
            "src.unused-var",
            f"variable {var!r} is declared but never used",
            subject=var,
        )


# ----------------------------------------------------------------------
# Schedule / allocation rules
# ----------------------------------------------------------------------


def lint_design(design, sink: DiagnosticSink) -> None:
    """Run schedule, allocation, netlist and controller rules."""
    cdfg = design.cdfg
    source_map = cdfg.source_map

    # sched.use-before-def --------------------------------------------
    for schedule in design.schedules.values():
        problem = schedule.problem
        for u, v in problem.graph.edges:
            if u not in schedule.start or v not in schedule.start:
                continue  # Schedule.validate already rejects this
            earliest = schedule.start[u] + problem.edge_offset(u, v)
            if schedule.start[v] < earliest:
                sink.error(
                    "sched.use-before-def",
                    f"{problem.label}: op{v} is scheduled at step "
                    f"{schedule.start[v]}, before its operand op{u} is "
                    f"ready (step {earliest})",
                    where="schedule",
                    subject=f"op{v}",
                )

    # alloc.register-overlap / net.width-mismatch (carried values) ----
    for allocation in design.allocations.values():
        schedule = allocation.schedule
        label = schedule.problem.label
        lifetimes = compute_lifetimes(schedule,
                                      live_out_variables(schedule))
        by_register: dict[int, list] = {}
        for lifetime in lifetimes:
            register = allocation.register_map.get(lifetime.value.id)
            if register is not None:
                by_register.setdefault(register, []).append(lifetime)
        for register, held in sorted(by_register.items()):
            held.sort(key=lambda lt: (lt.def_step, lt.value.id))
            for first, second in zip(held, held[1:]):
                if first.conflicts_with(second):
                    sink.error(
                        "alloc.register-overlap",
                        f"{label}: register r{register} holds "
                        f"{first.value!r} and {second.value!r} with "
                        f"overlapping lifetimes",
                        where="allocation",
                        subject=f"r{register}",
                    )

        for lifetime in lifetimes:
            carrier = lifetime.carrier
            if carrier is None or carrier not in cdfg.variables:
                continue
            declared_type = cdfg.variables[carrier]
            if not (is_scalar(declared_type)
                    and is_scalar(lifetime.value.type)):
                continue
            declared = bit_width(declared_type)
            actual = bit_width(lifetime.value.type)
            if actual <= declared:
                continue
            writer = next(
                (
                    user
                    for user, _ in lifetime.value.uses
                    if user.kind is OpKind.VAR_WRITE
                    and user.attrs["var"] == carrier
                ),
                None,
            )
            sink.warning(
                "net.width-mismatch",
                f"{label}: {actual}-bit value "
                f"({lifetime.value.type}) is stored into the "
                f"{declared}-bit register of {carrier!r} — upper bits "
                f"are dropped",
                location=source_map.get(
                    writer.id if writer is not None else -1
                ),
                where="netlist",
                subject=carrier,
            )

    # Netlist rules ----------------------------------------------------
    if design.binding is not None:
        lint_netlist(build_netlist(design), sink)

    # fsm.unreachable-state -------------------------------------------
    if design.fsm is not None:
        lint_fsm(design.fsm, sink)


# ----------------------------------------------------------------------
# Netlist rules
# ----------------------------------------------------------------------

#: Component kinds whose output is a combinational function of their
#: inputs.  Registers, memories and constants break timing paths.
_COMBINATIONAL = ("fu", "mux")


def lint_netlist(netlist: DatapathNetlist, sink: DiagnosticSink) -> None:
    """Run the structural rule family on a datapath netlist."""
    # net.comb-loop ----------------------------------------------------
    graph = nx.DiGraph()
    for component in netlist.components.values():
        if component.kind in _COMBINATIONAL:
            graph.add_node(component.name)
    for net in netlist.nets:
        for pin in net.sinks:
            if (
                net.driver.component.kind in _COMBINATIONAL
                and pin.component.kind in _COMBINATIONAL
            ):
                graph.add_edge(
                    net.driver.component.name, pin.component.name
                )
    for scc in nx.strongly_connected_components(graph):
        single = next(iter(scc))
        if len(scc) == 1 and not graph.has_edge(single, single):
            continue
        members = ", ".join(sorted(scc))
        sink.error(
            "net.comb-loop",
            f"combinational loop through {members} — the datapath has "
            f"an unregistered cycle",
            where="netlist",
            subject=sorted(scc)[0],
        )

    # net.multi-driver -------------------------------------------------
    drivers_of: dict[str, set[str]] = {}
    for net in netlist.nets:
        for pin in net.sinks:
            drivers_of.setdefault(str(pin), set()).add(str(net.driver))
    for pin_name, drivers in sorted(drivers_of.items()):
        if len(drivers) > 1:
            sink.error(
                "net.multi-driver",
                f"port {pin_name} is driven by {len(drivers)} nets "
                f"({', '.join(sorted(drivers))})",
                where="netlist",
                subject=pin_name,
            )

    # net.width-mismatch (structural) ---------------------------------
    for net in netlist.nets:
        for pin in net.sinks:
            if pin.component.width < net.width:
                sink.warning(
                    "net.width-mismatch",
                    f"{net.width}-bit net from {net.driver} feeds "
                    f"{pin} which is only {pin.component.width} bits "
                    f"wide",
                    where="netlist",
                    subject=str(pin),
                )

    # net.floating-port ------------------------------------------------
    has_inputs = {pin.component.name for net in netlist.nets
                  for pin in net.sinks}
    drives = {net.driver.component.name for net in netlist.nets}
    for component in sorted(netlist.components.values(),
                            key=lambda c: c.name):
        if component.kind not in _COMBINATIONAL:
            continue
        if component.name in drives and component.name not in has_inputs:
            sink.warning(
                "net.floating-port",
                f"{component.kind} {component.name} drives the datapath "
                f"but has no input connections",
                where="netlist",
                subject=component.name,
            )


def lint_fsm(fsm: FSM, sink: DiagnosticSink) -> None:
    """Run the controller rule family."""
    reachable = fsm.reachable()
    for state in fsm.states:
        if state.id in reachable:
            continue
        sink.warning(
            "fsm.unreachable-state",
            f"controller state S{state.id} "
            f"({state.block_name}#{state.step}) is unreachable from "
            f"the entry state",
            where="controller",
            subject=f"S{state.id}",
        )


# ----------------------------------------------------------------------
# End-to-end driver
# ----------------------------------------------------------------------


def _resource_model(name: str):
    from ..scheduling import TypedFUModel, UniversalFUModel

    if name == "universal":
        return UniversalFUModel()
    if name == "typed":
        return TypedFUModel(single_cycle=True)
    raise HLSError(f"unknown resource model {name!r}")


def lint_source(source: str,
                options: LintOptions | None = None) -> LintReport:
    """Lint behavioral source end to end.

    Compiles once *with* the diagnostic sink for the frontend and
    source rules, then compiles a second, pristine copy for synthesis —
    the engine optimizes its CDFG in place, and the source rules must
    see the program as written.
    """
    from ..core import SynthesisOptions, synthesize_cdfg
    from ..lang import compile_source

    options = options or LintOptions()
    sink = DiagnosticSink()

    cdfg = compile_source(source, options.procedure, sink=sink)
    lint_cdfg(cdfg, sink)

    design_cdfg = compile_source(source, options.procedure)
    design = synthesize_cdfg(
        design_cdfg,
        SynthesisOptions(
            scheduler=options.scheduler,
            allocator=options.allocator,
            model=_resource_model(options.model),
            optimize_ir=options.optimize,
        ),
    )
    lint_design(design, sink)

    return LintReport(
        cdfg.name,
        sorted(sink, key=lambda diag: diag.sort_key),
    )
