"""The whole-pipeline linter: every rule family, one driver.

Four rule families, each consuming the shared analyses:

* **source rules** (``src.*``, ``lang.*``) — run on the *unoptimized*
  CDFG, so findings point at what the user wrote, not at what the
  optimizer left behind: read-before-write (reaching definitions),
  unreachable blocks and constant conditions (constant lattice +
  condition-pruned CFG reachability), dead stores (liveness), unused
  variables;
* **range rules** (``range.*``) — run on the sound interval analysis
  (:func:`~repro.analysis.ranges.range_analysis`): guaranteed and
  possible division by zero, comparisons decided by the operands'
  value ranges alone, arithmetic whose unbounded result provably
  cannot be represented by its type, and shift amounts outside the
  operand width.  The same intervals also *suppress*
  ``lang.implicit-trunc`` (and the same-cause ``net.width-mismatch``)
  when the stored value's range provably fits the destination type;
* **design rules** (``sched.*``, ``alloc.*``) — run on a synthesized
  design: scheduled use-before-def (the dependence-edge twin of
  ``Schedule.validate``), register sharing with overlapping lifetimes,
  and values wider than the variable register that carries them;
* **netlist/controller rules** (``net.*``, ``fsm.*``) — run on the
  structural netlist and the FSM: combinational loops (SCC over the
  combinational subgraph), multiply-driven ports, structural width
  mismatches, floating inputs, unreachable states.

:func:`lint_source` is the end-to-end driver the ``repro lint`` CLI
verb calls: compile with a diagnostic sink, lint the CDFG, synthesize a
separate copy (the engine optimizes in place), lint the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..allocation.lifetimes import compute_lifetimes
from ..controller.fsm import FSM
from ..datapath.netlist import DatapathNetlist, build_netlist
from ..errors import HLSError
from ..ir.cdfg import CDFG, IfRegion, LoopRegion
from ..ir.opcodes import COMPARISONS, OpKind
from ..ir.types import FixedType, IntType, bit_width, is_scalar
from .cfg import build_cfg
from .constants import constant_lattice, evaluated_conditions
from .diagnostics import Diagnostic, DiagnosticSink
from .liveness import live_out_variables, variable_liveness
from .ranges import Interval, fits_type, range_analysis, type_interval
from .reaching import UNINIT, def_use_chains


# ----------------------------------------------------------------------
# Options and report
# ----------------------------------------------------------------------


@dataclass
class LintOptions:
    """Knobs of one lint run (mirrors the synthesis knobs that affect
    what gets checked)."""

    procedure: str | None = None
    scheduler: str = "list"
    allocator: str = "left-edge"
    #: Resource model for the design-level rules.  "typed" (distinct
    #: adder/multiplier/… classes, the realistic datapath) is the
    #: default: under the single-class universal model, index-monotone
    #: FU sharing can never close a combinational cycle, so net.* rules
    #: would have nothing to find.
    model: str = "typed"
    optimize: bool = True


@dataclass
class LintReport:
    """All diagnostics of one lint run, ordered by source position."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def count(self, severity: str) -> int:
        return sum(
            1 for diag in self.diagnostics if diag.severity == severity
        )

    @property
    def exit_code(self) -> int:
        """2 with errors present, 1 with warnings only, 0 when clean."""
        if self.count("error"):
            return 2
        if self.count("warning"):
            return 1
        return 0

    def render(self) -> str:
        lines = [f"lint report for '{self.name}':"]
        if not self.diagnostics:
            lines.append("  clean — no findings")
        for diag in self.diagnostics:
            lines.append(f"  {diag.render()}")
        lines.append(
            f"{self.count('error')} error(s), "
            f"{self.count('warning')} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "design": self.name,
            "errors": self.count("error"),
            "warnings": self.count("warning"),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }

    def rule_counts(self) -> dict[str, int]:
        """Findings per rule id — the QoR ledger's lint fingerprint."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return dict(sorted(counts.items()))


#: Diagnostic severity → SARIF result level.
_SARIF_LEVELS = {"info": "note", "warning": "warning", "error": "error"}


def sarif_document(reports: list[LintReport],
                   uri: str | None = None) -> dict[str, Any]:
    """Render lint reports as one SARIF 2.1.0 document (one run per
    report), the interchange format code-scanning UIs ingest.

    Args:
        reports: the lint reports to serialize.
        uri: optional artifact URI recorded on located results
            (normally the linted file's path).
    """
    runs = []
    for report in reports:
        results = []
        for diag in report.diagnostics:
            result: dict[str, Any] = {
                "ruleId": diag.rule,
                "level": _SARIF_LEVELS[diag.severity],
                "message": {"text": diag.message},
                "properties": {
                    "where": diag.where,
                    "subject": diag.subject,
                },
            }
            if diag.location is not None:
                physical: dict[str, Any] = {
                    "region": {
                        "startLine": diag.location.line,
                        "startColumn": diag.location.column,
                    }
                }
                if uri is not None:
                    physical["artifactLocation"] = {"uri": uri}
                result["locations"] = [{"physicalLocation": physical}]
            results.append(result)
        runs.append({
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": [
                        {"id": rule}
                        for rule in sorted(report.rule_counts())
                    ],
                }
            },
            "properties": {"design": report.name},
            "results": results,
        })
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    }


# ----------------------------------------------------------------------
# Source / CDFG rules
# ----------------------------------------------------------------------


def lint_cdfg(cdfg: CDFG, sink: DiagnosticSink) -> set[tuple]:
    """Run the source and range rule families on (ideally unoptimized)
    IR.  Returns the range-proven suppression keys — ``(line, column,
    variable)`` triples of stores whose value provably fits the
    destination type, which the driver uses to drop the corresponding
    ``lang.implicit-trunc`` / ``net.width-mismatch`` findings."""
    cfg = build_cfg(cdfg)
    source_map = cdfg.source_map

    # src.read-before-write -------------------------------------------
    chains = def_use_chains(cdfg, cfg)
    for block in cfg.blocks.values():
        for op in block.ops:
            if op.kind is not OpKind.VAR_READ:
                continue
            if chains.boundary_reads.get(op.id) != UNINIT:
                continue
            var = op.attrs["var"]
            certain = not chains.defs_of.get(op.id)
            diag = Diagnostic(
                "src.read-before-write",
                "error" if certain else "warning",
                (
                    f"variable {var!r} is read before it is written"
                    if certain
                    else f"variable {var!r} may be read before it is "
                    f"written"
                ),
                location=source_map.get(op.id),
                subject=var,
            )
            sink.emit(diag)

    # src.const-condition / src.unreachable-block ---------------------
    constants = constant_lattice(cdfg, cfg)
    known = evaluated_conditions(cdfg, cfg, constants)
    for region in cdfg.body.walk():
        if not isinstance(region, (IfRegion, LoopRegion)):
            continue
        literal = known.get(region.cond.id)
        if literal is None:
            continue
        what = "loop" if isinstance(region, LoopRegion) else "branch"
        sink.warning(
            "src.const-condition",
            f"{what} condition is always {literal}",
            location=source_map.get(region.cond.producer.id),
        )
    reachable = cfg.reachable(known)
    for block_id, block in cfg.blocks.items():
        if block_id in reachable:
            continue
        location = next(
            (
                source_map[op.id]
                for op in block.ops
                if op.id in source_map
            ),
            None,
        )
        sink.warning(
            "src.unreachable-block",
            f"block {block.name} is unreachable "
            f"(a controlling condition is constant)",
            location=location,
            subject=block.name,
        )

    # src.dead-store ---------------------------------------------------
    liveness = variable_liveness(cdfg, cfg)
    for block_id, block in cfg.blocks.items():
        if block_id not in reachable:
            continue  # already reported as unreachable
        live_out = liveness.live_out[block_id]
        for op in block.ops:
            if op.kind is not OpKind.VAR_WRITE:
                continue
            var = op.attrs["var"]
            if var in live_out:
                continue
            sink.warning(
                "src.dead-store",
                f"value assigned to {var!r} is never read",
                location=source_map.get(op.id),
                subject=var,
            )

    # src.unused-var ---------------------------------------------------
    ports = {port.name for port in cdfg.inputs}
    ports |= {port.name for port in cdfg.outputs}
    referenced = {
        op.attrs["var"]
        for op in cdfg.operations()
        if op.kind in (OpKind.VAR_READ, OpKind.VAR_WRITE)
    }
    for var in sorted(cdfg.variables):
        if var in ports or var in referenced:
            continue
        sink.warning(
            "src.unused-var",
            f"variable {var!r} is declared but never used",
            subject=var,
        )

    # range.* ----------------------------------------------------------
    return _lint_ranges(cdfg, cfg, constants, sink, source_map)


# ----------------------------------------------------------------------
# Range rules
# ----------------------------------------------------------------------

#: Rules the interval analysis may prove harmless: a store whose value
#: range provably fits the destination type loses both the frontend's
#: truncation warning and its allocation-level twin.
RANGE_SUPPRESSIBLE = ("lang.implicit-trunc", "net.width-mismatch")

_ALWAYS_TRUE = Interval(1, 1)
_ALWAYS_FALSE = Interval(0, 0)


def _grid_compatible(src, dst) -> bool:
    """Every value representable at ``src``'s granularity is on
    ``dst``'s grid too (range aside): the fractional resolution must
    not shrink, else in-range interior values would still be rounded."""
    def frac(type_) -> int | None:
        if isinstance(type_, FixedType):
            return type_.frac_bits
        if isinstance(type_, IntType):
            return 0
        return None

    src_frac, dst_frac = frac(src), frac(dst)
    if src_frac is None or dst_frac is None:
        return False
    return src_frac <= dst_frac


def _lint_ranges(cdfg: CDFG, cfg, constants, sink: DiagnosticSink,
                 source_map) -> set[tuple]:
    """The ``range.*`` family plus the truncation suppression keys."""
    ranges = range_analysis(cdfg, cfg, constants)
    suppressed: set[tuple] = set()

    for block_id, block in cfg.blocks.items():
        if ranges.env_in.get(block_id) is None:
            continue  # unreachable: intervals there are vacuous
        for op in block.ops:
            location = source_map.get(op.id)

            # range.div-zero ------------------------------------------
            if op.kind in (OpKind.DIV, OpKind.MOD):
                divisor = op.operands[1]
                iv = ranges.values.get(divisor.id)
                if iv is not None and iv.is_point and iv.lo == 0:
                    sink.error(
                        "range.div-zero",
                        "divisor is always zero",
                        location=location,
                    )
                elif iv is not None and (iv.lo == 0 or iv.hi == 0):
                    # Zero sitting somewhere inside a wide signed range
                    # is usually noise; zero as a *proven extremum* of
                    # a sign-constrained divisor (an unsigned count,
                    # say) is the classic reachable div-by-zero.
                    sink.warning(
                        "range.div-zero",
                        f"divisor may be zero "
                        f"(value in [{iv.lo}, {iv.hi}])",
                        location=location,
                    )

            # range.const-compare -------------------------------------
            if (
                op.kind in COMPARISONS
                and op.result is not None
                and constants.values.get(op.result.id) is None
            ):
                # Constant-folded compares are src.const-condition's
                # business; this rule reports decisions forced by value
                # *ranges* that no single constant explains.
                iv = ranges.values.get(op.result.id)
                if iv in (_ALWAYS_TRUE, _ALWAYS_FALSE):
                    verdict = "true" if iv == _ALWAYS_TRUE else "false"
                    sink.warning(
                        "range.const-compare",
                        f"comparison is always {verdict} for the "
                        f"operands' value ranges",
                        location=location,
                    )

            # range.overflow ------------------------------------------
            if op.result is not None and is_scalar(op.result.type):
                raw = ranges.raw_values.get(op.result.id)
                if raw is not None:
                    rep = type_interval(op.result.type)
                    if raw.hi < rep.lo or raw.lo > rep.hi:
                        sink.warning(
                            "range.overflow",
                            f"result always wraps: value in "
                            f"[{raw.lo}, {raw.hi}] never fits "
                            f"{op.result.type}",
                            location=location,
                        )

            # range.shift-range ---------------------------------------
            if op.kind in (OpKind.SHL, OpKind.SHR):
                amount = op.operands[1]
                iv = ranges.values.get(amount.id)
                width = bit_width(op.operands[0].type)
                if iv is not None and iv.hi < 0:
                    sink.error(
                        "range.shift-range",
                        f"shift amount is always negative "
                        f"(value in [{iv.lo}, {iv.hi}])",
                        location=location,
                    )
                elif iv is not None and iv.lo >= width:
                    sink.warning(
                        "range.shift-range",
                        f"shift amount is always >= the operand "
                        f"width ({width}); every input bit is "
                        f"discarded",
                        location=location,
                    )

            # Truncation suppression ----------------------------------
            if op.kind is OpKind.VAR_WRITE:
                var = op.attrs["var"]
                declared = cdfg.variables.get(var)
                iv = ranges.values.get(op.operands[0].id)
                if (
                    declared is not None
                    and iv is not None
                    and location is not None
                    and _grid_compatible(op.operands[0].type, declared)
                    and fits_type(iv, declared)
                ):
                    suppressed.add((location.line, location.column, var))

    return suppressed


# ----------------------------------------------------------------------
# Schedule / allocation rules
# ----------------------------------------------------------------------


def lint_design(design, sink: DiagnosticSink) -> None:
    """Run schedule, allocation, netlist and controller rules."""
    cdfg = design.cdfg
    source_map = cdfg.source_map

    # sched.use-before-def --------------------------------------------
    for schedule in design.schedules.values():
        problem = schedule.problem
        for u, v in problem.graph.edges:
            if u not in schedule.start or v not in schedule.start:
                continue  # Schedule.validate already rejects this
            earliest = schedule.start[u] + problem.edge_offset(u, v)
            if schedule.start[v] < earliest:
                sink.error(
                    "sched.use-before-def",
                    f"{problem.label}: op{v} is scheduled at step "
                    f"{schedule.start[v]}, before its operand op{u} is "
                    f"ready (step {earliest})",
                    where="schedule",
                    subject=f"op{v}",
                )

    # alloc.register-overlap / net.width-mismatch (carried values) ----
    for allocation in design.allocations.values():
        schedule = allocation.schedule
        label = schedule.problem.label
        lifetimes = compute_lifetimes(schedule,
                                      live_out_variables(schedule))
        by_register: dict[int, list] = {}
        for lifetime in lifetimes:
            register = allocation.register_map.get(lifetime.value.id)
            if register is not None:
                by_register.setdefault(register, []).append(lifetime)
        for register, held in sorted(by_register.items()):
            held.sort(key=lambda lt: (lt.def_step, lt.value.id))
            for first, second in zip(held, held[1:]):
                if first.conflicts_with(second):
                    sink.error(
                        "alloc.register-overlap",
                        f"{label}: register r{register} holds "
                        f"{first.value!r} and {second.value!r} with "
                        f"overlapping lifetimes",
                        where="allocation",
                        subject=f"r{register}",
                    )

        for lifetime in lifetimes:
            carrier = lifetime.carrier
            if carrier is None or carrier not in cdfg.variables:
                continue
            declared_type = cdfg.variables[carrier]
            if not (is_scalar(declared_type)
                    and is_scalar(lifetime.value.type)):
                continue
            declared = bit_width(declared_type)
            actual = bit_width(lifetime.value.type)
            if actual <= declared:
                continue
            writer = next(
                (
                    user
                    for user, _ in lifetime.value.uses
                    if user.kind is OpKind.VAR_WRITE
                    and user.attrs["var"] == carrier
                ),
                None,
            )
            sink.warning(
                "net.width-mismatch",
                f"{label}: {actual}-bit value "
                f"({lifetime.value.type}) is stored into the "
                f"{declared}-bit register of {carrier!r} — upper bits "
                f"are dropped",
                location=source_map.get(
                    writer.id if writer is not None else -1
                ),
                where="netlist",
                subject=carrier,
            )

    # Netlist rules ----------------------------------------------------
    if design.binding is not None:
        lint_netlist(build_netlist(design), sink)

    # fsm.unreachable-state -------------------------------------------
    if design.fsm is not None:
        lint_fsm(design.fsm, sink)


# ----------------------------------------------------------------------
# Netlist rules
# ----------------------------------------------------------------------

#: Component kinds whose output is a combinational function of their
#: inputs.  Registers, memories and constants break timing paths.
_COMBINATIONAL = ("fu", "mux")


def lint_netlist(netlist: DatapathNetlist, sink: DiagnosticSink) -> None:
    """Run the structural rule family on a datapath netlist."""
    # net.comb-loop ----------------------------------------------------
    graph = nx.DiGraph()
    for component in netlist.components.values():
        if component.kind in _COMBINATIONAL:
            graph.add_node(component.name)
    for net in netlist.nets:
        for pin in net.sinks:
            if (
                net.driver.component.kind in _COMBINATIONAL
                and pin.component.kind in _COMBINATIONAL
            ):
                graph.add_edge(
                    net.driver.component.name, pin.component.name
                )
    for scc in nx.strongly_connected_components(graph):
        single = next(iter(scc))
        if len(scc) == 1 and not graph.has_edge(single, single):
            continue
        members = ", ".join(sorted(scc))
        sink.error(
            "net.comb-loop",
            f"combinational loop through {members} — the datapath has "
            f"an unregistered cycle",
            where="netlist",
            subject=sorted(scc)[0],
        )

    # net.multi-driver -------------------------------------------------
    drivers_of: dict[str, set[str]] = {}
    for net in netlist.nets:
        for pin in net.sinks:
            drivers_of.setdefault(str(pin), set()).add(str(net.driver))
    for pin_name, drivers in sorted(drivers_of.items()):
        if len(drivers) > 1:
            sink.error(
                "net.multi-driver",
                f"port {pin_name} is driven by {len(drivers)} nets "
                f"({', '.join(sorted(drivers))})",
                where="netlist",
                subject=pin_name,
            )

    # net.width-mismatch (structural) ---------------------------------
    for net in netlist.nets:
        for pin in net.sinks:
            if pin.component.width < net.width:
                sink.warning(
                    "net.width-mismatch",
                    f"{net.width}-bit net from {net.driver} feeds "
                    f"{pin} which is only {pin.component.width} bits "
                    f"wide",
                    where="netlist",
                    subject=str(pin),
                )

    # net.floating-port ------------------------------------------------
    has_inputs = {pin.component.name for net in netlist.nets
                  for pin in net.sinks}
    drives = {net.driver.component.name for net in netlist.nets}
    for component in sorted(netlist.components.values(),
                            key=lambda c: c.name):
        if component.kind not in _COMBINATIONAL:
            continue
        if component.name in drives and component.name not in has_inputs:
            sink.warning(
                "net.floating-port",
                f"{component.kind} {component.name} drives the datapath "
                f"but has no input connections",
                where="netlist",
                subject=component.name,
            )


def lint_fsm(fsm: FSM, sink: DiagnosticSink) -> None:
    """Run the controller rule family."""
    reachable = fsm.reachable()
    for state in fsm.states:
        if state.id in reachable:
            continue
        sink.warning(
            "fsm.unreachable-state",
            f"controller state S{state.id} "
            f"({state.block_name}#{state.step}) is unreachable from "
            f"the entry state",
            where="controller",
            subject=f"S{state.id}",
        )


# ----------------------------------------------------------------------
# End-to-end driver
# ----------------------------------------------------------------------


def _resource_model(name: str):
    from ..scheduling import TypedFUModel, UniversalFUModel

    if name == "universal":
        return UniversalFUModel()
    if name == "typed":
        return TypedFUModel(single_cycle=True)
    raise HLSError(f"unknown resource model {name!r}")


def lint_source(source: str,
                options: LintOptions | None = None) -> LintReport:
    """Lint behavioral source end to end.

    Compiles once *with* the diagnostic sink for the frontend and
    source rules, then compiles a second, pristine copy for synthesis —
    the engine optimizes its CDFG in place, and the source rules must
    see the program as written.
    """
    from ..core import SynthesisOptions, synthesize_cdfg
    from ..lang import compile_source

    options = options or LintOptions()
    sink = DiagnosticSink()

    cdfg = compile_source(source, options.procedure, sink=sink)
    suppressed = lint_cdfg(cdfg, sink)

    design_cdfg = compile_source(source, options.procedure)
    design = synthesize_cdfg(
        design_cdfg,
        SynthesisOptions(
            scheduler=options.scheduler,
            allocator=options.allocator,
            model=_resource_model(options.model),
            optimize_ir=options.optimize,
        ),
    )
    lint_design(design, sink)

    # Drop the truncation findings the interval analysis proved
    # harmless (the value range fits the destination exactly).
    diagnostics = [
        diag
        for diag in sink
        if not (
            diag.rule in RANGE_SUPPRESSIBLE
            and diag.location is not None
            and (diag.location.line, diag.location.column, diag.subject)
            in suppressed
        )
    ]
    return LintReport(
        cdfg.name,
        sorted(diagnostics, key=lambda diag: diag.sort_key),
    )
