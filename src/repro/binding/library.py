"""Hardware component library for module binding.

§2: "For the binding of functional units, known components such as
adders can be taken from a hardware library.  Libraries facilitate the
synthesis process and the size/timing estimation."

Components carry *relative* area and delay figures (normalized units:
area ≈ gate-equivalents per bit, delay in ns for a 16-bit instance) —
the paper's results only depend on relative costs, and the default
numbers follow the rough ratios of the mid-80s datapath literature the
tutorial cites (a multiplier ≈ 8-10 adders in area and 2-3x slower; an
ALU slightly larger than an adder; an incrementer about half an adder).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BindingError
from ..ir.opcodes import OpKind

#: Cost constants for structures that are not library components.
REGISTER_AREA_PER_BIT = 8.0
MUX_AREA_PER_INPUT_BIT = 2.0
CONTROLLER_AREA_PER_STATE_BIT = 12.0
WIRE_AREA_PER_TRACK = 0.5


@dataclass(frozen=True)
class Component:
    """One library module.

    Attributes:
        name: library name, e.g. "add16".
        kinds: operation kinds this module can execute.
        area_per_bit: area per result bit (normalized gate equivalents).
        area_fixed: width-independent area overhead.
        delay_ns: combinational delay of a 16-bit instance.
    """

    name: str
    kinds: frozenset[OpKind]
    area_per_bit: float
    area_fixed: float = 0.0
    delay_ns: float = 10.0

    def supports(self, kinds) -> bool:
        return set(kinds) <= self.kinds

    def area(self, width: int) -> float:
        return self.area_fixed + self.area_per_bit * width

    def cache_token(self) -> tuple:
        """Value-level identity for persistent cache keys."""
        return (
            self.name,
            tuple(sorted(kind.value for kind in self.kinds)),
            self.area_per_bit,
            self.area_fixed,
            self.delay_ns,
        )


def _kinds(*kinds: OpKind) -> frozenset[OpKind]:
    return frozenset(kinds)


_ADD_KINDS = _kinds(OpKind.ADD, OpKind.SUB, OpKind.NEG,
                    OpKind.INC, OpKind.DEC)
_CMP_KINDS = _kinds(OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE,
                    OpKind.GT, OpKind.GE)
_LOGIC_KINDS = _kinds(OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT)
_SHIFT_KINDS = _kinds(OpKind.SHL, OpKind.SHR)


DEFAULT_COMPONENTS: tuple[Component, ...] = (
    Component("inc", _kinds(OpKind.INC, OpKind.DEC), 3.0, delay_ns=6.0),
    Component("add", _ADD_KINDS, 7.0, delay_ns=12.0),
    Component("cmp", _CMP_KINDS, 4.0, delay_ns=8.0),
    Component("logic", _LOGIC_KINDS, 2.0, delay_ns=4.0),
    Component("shift", _SHIFT_KINDS, 5.0, delay_ns=8.0),
    Component("alu", _ADD_KINDS | _CMP_KINDS | _LOGIC_KINDS, 11.0,
              delay_ns=14.0),
    Component("mul", _kinds(OpKind.MUL), 60.0, area_fixed=40.0,
              delay_ns=36.0),
    Component("div", _kinds(OpKind.DIV, OpKind.MOD), 75.0, area_fixed=60.0,
              delay_ns=48.0),
    Component(
        "universal",
        _ADD_KINDS | _CMP_KINDS | _LOGIC_KINDS | _SHIFT_KINDS
        | _kinds(OpKind.MUL, OpKind.DIV, OpKind.MOD,
                 OpKind.LOAD, OpKind.STORE),
        150.0,
        area_fixed=100.0,
        delay_ns=48.0,
    ),
    Component("mem_port", _kinds(OpKind.LOAD, OpKind.STORE), 4.0,
              delay_ns=10.0),
)


class ComponentLibrary:
    """A searchable set of components.

    The default library contains the modules above; custom libraries
    model technology trade-offs (the paper: libraries "can prevent
    efficient solutions that require special hardware" — tests exercise
    a library without an incrementer to show the fallback to adders).
    """

    def __init__(self, components: tuple[Component, ...] | list[Component]
                 = DEFAULT_COMPONENTS) -> None:
        self._components = tuple(components)
        if not self._components:
            raise BindingError("component library is empty")

    def __iter__(self):
        return iter(self._components)

    def component(self, name: str) -> Component:
        for component in self._components:
            if component.name == name:
                return component
        raise BindingError(f"no component named {name!r}")

    def cheapest_for(self, kinds, width: int) -> Component:
        """The smallest component executing every kind in ``kinds``.

        Raises :class:`BindingError` when no component covers the set —
        callers then split the unit or extend the library.
        """
        kinds = set(kinds)
        candidates = [
            component
            for component in self._components
            if component.supports(kinds)
        ]
        if not candidates:
            raise BindingError(
                f"no library component implements {sorted(k.value for k in kinds)}"
            )
        return min(candidates, key=lambda c: (c.area(width), c.name))

    def cache_token(self) -> tuple:
        """Value-level identity for persistent cache keys.

        Libraries are plain component data, so any two with the same
        components (in order — candidate order breaks area ties) are
        interchangeable across processes.
        """
        return ("library",) + tuple(
            component.cache_token() for component in self._components
        )
