"""Module binding: choosing library components for allocated units."""

from .binder import Binding, ModuleBinder
from .library import (
    CONTROLLER_AREA_PER_STATE_BIT,
    DEFAULT_COMPONENTS,
    MUX_AREA_PER_INPUT_BIT,
    REGISTER_AREA_PER_BIT,
    WIRE_AREA_PER_TRACK,
    Component,
    ComponentLibrary,
)

__all__ = [
    "Binding",
    "CONTROLLER_AREA_PER_STATE_BIT",
    "Component",
    "ComponentLibrary",
    "DEFAULT_COMPONENTS",
    "MUX_AREA_PER_INPUT_BIT",
    "ModuleBinder",
    "REGISTER_AREA_PER_BIT",
    "WIRE_AREA_PER_TRACK",
]
