"""Module binding: FU instances → library components.

§2: "In addition to designing the abstract structure of the data path,
the system must decide how each component of the data path is to be
implemented.  This is sometimes called module binding."

Each allocated FU instance collects the set of operation kinds it must
execute (from the ops mapped onto it) and the widest result it
produces; the binder picks the cheapest library component covering that
kind set at that width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..allocation.base import Allocation, FUInstance
from ..ir.opcodes import OpKind
from ..ir.types import bit_width
from .library import Component, ComponentLibrary


@dataclass
class Binding:
    """Component choice and width per FU instance."""

    components: dict[FUInstance, Component] = field(default_factory=dict)
    widths: dict[FUInstance, int] = field(default_factory=dict)
    op_kinds: dict[FUInstance, frozenset[OpKind]] = field(
        default_factory=dict
    )

    def area(self) -> float:
        """Total functional-unit area."""
        return sum(
            component.area(self.widths[fu])
            for fu, component in self.components.items()
        )

    def max_delay_ns(self) -> float:
        """Slowest bound component (a single-phase clock bound)."""
        return max(
            (component.delay_ns for component in self.components.values()),
            default=0.0,
        )

    def signature(self) -> tuple:
        """Hashable identity of the binding's decisions (FU →
        component, width), for stage-level differential comparison."""
        return tuple(sorted(
            (str(fu), component.name, self.widths[fu])
            for fu, component in self.components.items()
        ))

    def report(self) -> str:
        lines = ["module binding:"]
        for fu in sorted(self.components, key=lambda f: (f.cls, f.index)):
            component = self.components[fu]
            width = self.widths[fu]
            lines.append(
                f"  {fu} -> {component.name} ({width} bits, "
                f"area {component.area(width):.0f}, "
                f"{component.delay_ns:.0f} ns)"
            )
        return "\n".join(lines)


class ModuleBinder:
    """Binds every FU instance of an allocation to a component."""

    def __init__(self, library: ComponentLibrary | None = None) -> None:
        self.library = library or ComponentLibrary()

    def bind(self, allocation: Allocation) -> Binding:
        binding = Binding()
        kinds_by_fu: dict[FUInstance, set[OpKind]] = {}
        width_by_fu: dict[FUInstance, int] = {}
        problem = allocation.schedule.problem
        for op_id, fu in allocation.fu_map.items():
            op = problem.op(op_id)
            kinds_by_fu.setdefault(fu, set()).add(op.kind)
            widths = [bit_width(v.type) for v in op.operands]
            if op.result is not None:
                widths.append(bit_width(op.result.type))
            width_by_fu[fu] = max(
                width_by_fu.get(fu, 1), max(widths, default=1)
            )
        for fu in sorted(kinds_by_fu, key=lambda f: (f.cls, f.index)):
            kinds = kinds_by_fu[fu]
            width = width_by_fu[fu]
            # VAR_WRITE bare moves bound as pass-through: no component.
            kinds.discard(OpKind.VAR_WRITE)
            if not kinds:
                continue
            binding.components[fu] = self.library.cheapest_for(kinds, width)
            binding.widths[fu] = width
            binding.op_kinds[fu] = frozenset(kinds)
        return binding

    def merge(self, bindings: list[Binding]) -> Binding:
        """Combine per-block bindings into one datapath-wide binding:
        the same FU instance bound in several blocks gets the cheapest
        component covering *all* its kinds (re-queried on the union)."""
        merged = Binding()
        kinds: dict[FUInstance, set[OpKind]] = {}
        widths: dict[FUInstance, int] = {}
        for binding in bindings:
            for fu in binding.components:
                kinds.setdefault(fu, set()).update(binding.op_kinds[fu])
                widths[fu] = max(widths.get(fu, 1), binding.widths[fu])
        for fu in sorted(kinds, key=lambda f: (f.cls, f.index)):
            merged.components[fu] = self.library.cheapest_for(
                kinds[fu], widths[fu]
            )
            merged.widths[fu] = widths[fu]
            merged.op_kinds[fu] = frozenset(kinds[fu])
        return merged
