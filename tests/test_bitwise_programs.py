"""End-to-end tests for bitwise/logical operator coverage through the
full flow (lexer → synthesis → RTL equivalence)."""


from repro.core import synthesize
from repro.scheduling import ResourceConstraints
from repro.sim import RTLSimulator, check_equivalence

BITOPS = """
procedure bits(input a: uint<8>; input b: uint<8>;
               output o_and: uint<8>; output o_or: uint<8>;
               output o_xor: uint<8>; output o_not: uint<8>;
               output o_shl: uint<8>; output o_shr: uint<8>);
begin
  o_and := a & b;
  o_or  := a | b;
  o_xor := a ^ b;
  o_not := ~a;
  o_shl := a << 2;
  o_shr := a >> 1;
end
"""

MODMIX = """
procedure modmix(input a: int<16>; input b: int<16>; output q: int<16>;
                 output r: int<16>);
begin
  if b /= 0 then
  begin
    q := a / b;
    r := a mod b;
  end
  else
  begin
    q := 0;
    r := 0;
  end;
end
"""

BOOLEXPR = """
procedure inrange(input x: int<16>; input lo: int<16>;
                  input hi: int<16>; output ok: uint<1>);
begin
  if (x >= lo) and (x <= hi) or (x = 0) then
    ok := 1;
  else
    ok := 0;
end
"""


class TestBitwisePrograms:
    def test_bitops_reference(self):
        design = synthesize(
            BITOPS, constraints=ResourceConstraints({"fu": 2})
        )
        for a, b in ((0b10110100, 0b01101100), (0, 255), (255, 0)):
            out = RTLSimulator(design).run({"a": a, "b": b})
            assert out["o_and"] == a & b
            assert out["o_or"] == a | b
            assert out["o_xor"] == a ^ b
            assert out["o_not"] == (~a) & 0xFF
            assert out["o_shl"] == (a << 2) & 0xFF
            assert out["o_shr"] == a >> 1

    def test_bitops_equivalent(self):
        design = synthesize(
            BITOPS, constraints=ResourceConstraints({"fu": 1})
        )
        assert check_equivalence(design).equivalent

    def test_div_mod_guarded(self):
        design = synthesize(
            MODMIX, constraints=ResourceConstraints({"fu": 1})
        )
        vectors = [
            {"a": 17, "b": 5},
            {"a": -17, "b": 5},
            {"a": 17, "b": -5},
            {"a": 17, "b": 0},   # guarded division by zero
        ]
        assert check_equivalence(design, vectors=vectors).equivalent
        out = RTLSimulator(design).run({"a": 17, "b": 5})
        assert out == {"q": 3, "r": 2}

    def test_boolean_connectives(self):
        design = synthesize(
            BOOLEXPR, constraints=ResourceConstraints({"fu": 2})
        )
        cases = [
            ({"x": 5, "lo": 0, "hi": 10}, 1),
            ({"x": 15, "lo": 0, "hi": 10}, 0),
            ({"x": 0, "lo": 3, "hi": 10}, 1),   # the `or x = 0` escape
            ({"x": -1, "lo": 0, "hi": 10}, 0),
        ]
        for inputs, expected in cases:
            assert RTLSimulator(design).run(inputs)["ok"] == expected
        assert check_equivalence(
            design, vectors=[c[0] for c in cases]
        ).equivalent
