"""Golden-file tests: Violation rendering and ``repro verify`` output.

The golden files under ``tests/golden/`` pin the exact user-visible
text.  Violation renderings are built from hand-constructed records
(op/value ids in messages come from process-local counters, so goldens
of real corrupted designs pin *kinds*, not messages).
"""

from pathlib import Path

import pytest

from repro.__main__ import main
from repro.controller.fsm import Transition
from repro.core import SynthesisOptions, synthesize
from repro.scheduling import ResourceConstraints
from repro.verify import VerificationReport, Violation, verify_design
from repro.workloads import SQRT_SOURCE

GOLDEN = Path(__file__).resolve().parent / "golden"


def read_golden(name: str) -> str:
    return (GOLDEN / name).read_text()


class TestViolationRenderGolden:
    def test_report_render_matches_golden(self):
        report = VerificationReport("corrupted")
        report.extend([
            Violation(
                "controller", "dead-state", "S4",
                "state S4 (body#4) can never reach the halt exit",
            ),
            Violation(
                "allocation", "register-overlap", "body",
                "register r2 holds v9 (0, 3] and v11 (2, 5] "
                "simultaneously",
            ),
            Violation(
                "scheduling", "precedence", "body",
                "op7@1 starts before its predecessor op5@2 allows "
                "(earliest legal start 3)",
            ),
            Violation(
                "allocation", "fu-double-booked", "body",
                "fu0 runs op3 [1,1] and op4 [1,1] in overlapping "
                "steps",
            ),
        ])
        assert report.render() + "\n" == read_golden(
            "violation_render.txt"
        )

    def test_single_violation_render(self):
        violation = Violation(
            "binding", "unbound-fu", "fu0",
            "fu0 executes ['add'] but has no library component",
        )
        assert violation.render() == (
            "[binding] unbound-fu @fu0: fu0 executes ['add'] but has "
            "no library component"
        )


class TestBrokenDesignGolden:
    def test_corrupted_sqrt_reports_expected_kinds(self):
        """Three hand-injected corruptions, one per layer; the kind
        set is pinned by a golden file."""
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 2})
            ),
        )
        schedule = next(iter(design.schedules.values()))
        schedule.start[next(iter(schedule.start))] = -1
        fu = next(iter(design.binding.components))
        design.binding.components.pop(fu)
        design.fsm.states[0].transition = Transition(999)

        report = verify_design(design)
        assert not report.ok
        expected = set(
            read_golden("broken_sqrt_kinds.txt").split()
        )
        assert report.kinds() == expected


class TestVerifyCLIGolden:
    @pytest.fixture
    def sqrt_file(self, tmp_path):
        path = tmp_path / "sqrt.bsl"
        path.write_text(SQRT_SOURCE)
        return str(path)

    def test_verify_output_matches_golden(self, sqrt_file, capsys):
        assert main(["verify", sqrt_file]) == 0
        out = capsys.readouterr().out
        assert out == read_golden("cli_verify_sqrt.txt")

    def test_verify_differential_flag(self, sqrt_file, capsys):
        assert main([
            "verify", sqrt_file, "--differential",
            "--scheduler", "list",
        ]) == 0
        out = capsys.readouterr().out
        assert "differential on 'sqrt': PASS" in out

    def test_fuzz_cli(self, tmp_path, capsys):
        assert main([
            "fuzz", "--seeds", "2", "--ops", "6",
            "--artifacts", str(tmp_path / "artifacts"),
        ]) == 0
        out = capsys.readouterr().out
        assert "fuzz: PASS (2 seeds, 0 failing)" in out
