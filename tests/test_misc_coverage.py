"""Coverage for remaining corners: DOT renderings, counter-narrowing
spellings, microcode over memory designs, cross-design equivalence."""

import pytest

from repro.controller import MicrocodeGenerator
from repro.core import SynthesisOptions, synthesize, synthesize_cdfg
from repro.ir import IntType
from repro.ir.dot import cdfg_dot, dataflow_dot
from repro.lang import compile_source
from repro.scheduling import ResourceConstraints, TypedFUModel
from repro.sim import RTLSimulator, default_vectors
from repro.transforms import (
    CounterNarrowing,
    PassManager,
    StrengthReduction,
)
from repro.workloads import RandomDFGSpec, random_dfg


class TestDotRenderings:
    def test_pretest_loop_dot(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  while b < a do b := b + 1;
end
""")
        text = cdfg_dot(cdfg)
        assert "diamond" in text       # the test block
        assert "style=dashed" in text  # the back edge

    def test_if_without_else_dot(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a;
  if a > 0 then b := 0;
end
""")
        text = cdfg_dot(cdfg)
        assert '[label="T"]' in text
        assert '[label="F"]' in text

    def test_dataflow_dot_labels_values(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + a;
end
""")
        text = dataflow_dot(cdfg.blocks()[0])
        assert '"a"' in text  # the value-name hint on the arc


class TestCounterSpellings:
    def test_reversed_compare_spelling(self):
        """`until 3 < i` is the same exit test as `until i > 3`."""
        cdfg = compile_source("""
procedure p(input a: fixed<16,8>; output b: fixed<16,8>);
var i: uint<4>;
begin
  b := a;
  i := 0;
  repeat
    b := b + a;
    i := i + 1;
  until 3 < i;
end
""")
        PassManager([StrengthReduction(), CounterNarrowing()]).run(cdfg)
        assert cdfg.variables["i"] == IntType(2, signed=False)

    def test_nonzero_init_not_narrowed(self):
        cdfg = compile_source("""
procedure p(input a: fixed<16,8>; output b: fixed<16,8>);
var i: uint<4>;
begin
  b := a;
  i := 1;
  repeat
    b := b + a;
    i := i + 1;
  until i > 3;
end
""")
        PassManager([StrengthReduction(), CounterNarrowing()]).run(cdfg)
        assert cdfg.variables["i"] == IntType(4, signed=False)


class TestMicrocodeWithMemories:
    def test_fir_microcode(self):
        from repro.workloads import fir_source

        design = synthesize(fir_source(4))
        microcode = MicrocodeGenerator(design).generate()
        assert microcode.states == design.fsm.state_count
        # Memory load-enables appear among the fields.
        names = {field.name for field in microcode.fields}
        assert any(name.startswith("ld_var_") for name in names)


class TestCrossDesignEquivalence:
    @pytest.mark.parametrize("seed", [2, 17, 99])
    def test_optimized_equals_unoptimized_rtl(self, seed):
        """Two *different designs* of the same specification produce
        identical outputs — scheduling/optimization must be
        observationally invisible."""
        spec = RandomDFGSpec(ops=14, seed=seed)
        constraints = ResourceConstraints({"add": 2, "mul": 1})
        plain = synthesize_cdfg(
            random_dfg(spec),
            SynthesisOptions(
                model=TypedFUModel(single_cycle=True),
                constraints=constraints,
                optimize_ir=False,
            ),
        )
        tuned = synthesize_cdfg(
            random_dfg(spec),
            SynthesisOptions(
                model=TypedFUModel(single_cycle=True),
                constraints=constraints,
                optimize_ir=True,
                tree_height=True,
            ),
        )
        for inputs in default_vectors(plain.cdfg, count=4, seed=seed):
            assert (
                RTLSimulator(plain).run(inputs)
                == RTLSimulator(tuned).run(inputs)
            )

    def test_scheduler_choice_invisible(self):
        from repro.workloads import SQRT_SOURCE

        designs = [
            synthesize(
                SQRT_SOURCE,
                options=SynthesisOptions(
                    scheduler=name,
                    constraints=ResourceConstraints({"fu": 2}),
                ),
            )
            for name in ("asap", "list", "ysc")
        ]
        for x in (0.1, 0.5, 1.0):
            outputs = {
                RTLSimulator(d).run({"X": x})["Y"] for d in designs
            }
            assert len(outputs) == 1
