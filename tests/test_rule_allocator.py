"""Tests for the DAA-style rule-based allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import (
    RuleBasedAllocator,
    compute_lifetimes,
    estimate_interconnect,
    minimum_registers,
)
from repro.scheduling import (
    ASAPScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import (
    RandomDFGSpec,
    ewf_cdfg,
    fig6_cdfg,
    random_dfg,
)

UNIT = TypedFUModel(single_cycle=True)


def scheduled(cdfg, constraints, scheduler=ListScheduler):
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], UNIT, constraints
    )
    schedule = scheduler(problem).schedule()
    schedule.validate()
    return schedule


class TestRuleBasedAllocator:
    def test_valid_on_ewf(self):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocator = RuleBasedAllocator(schedule)
        allocation = allocator.allocate()
        allocation.validate()

    def test_trace_covers_every_resource_op(self):
        schedule = scheduled(fig6_cdfg(), ResourceConstraints({"add": 2}))
        allocator = RuleBasedAllocator(schedule)
        allocator.allocate()
        traced = {firing.op_id for firing in allocator.trace}
        assert traced == set(schedule.problem.compute_op_ids())

    def test_explanation_names_rules(self):
        schedule = scheduled(fig6_cdfg(), ResourceConstraints({"add": 2}))
        allocator = RuleBasedAllocator(schedule)
        allocator.allocate()
        text = allocator.explanation()
        assert "open-unit" in text  # the first op always opens a unit
        assert "->" in text

    def test_accumulator_rule_fires_on_chains(self):
        """In an accumulation chain (a4 consumes a3), the consumer
        stays on its producer's adder."""
        schedule = scheduled(fig6_cdfg(), ResourceConstraints({"add": 2}),
                             scheduler=ASAPScheduler)
        allocator = RuleBasedAllocator(schedule)
        allocation = allocator.allocate()
        rules_fired = {f.rule for f in allocator.trace}
        assert "accumulator" in rules_fired
        chained = next(
            f for f in allocator.trace if f.rule == "accumulator"
        )
        # The producer really is on the same unit.
        op = schedule.problem.op(chained.op_id)
        producer_units = {
            allocation.fu_map.get(v.producer.id) for v in op.operands
        }
        assert chained.unit in producer_units

    def test_no_worse_than_blind_on_fig6(self):
        from repro.allocation import GreedyDatapathAllocator

        schedule = scheduled(fig6_cdfg(), ResourceConstraints({"add": 2}))
        rules = RuleBasedAllocator(schedule).allocate()
        blind = GreedyDatapathAllocator(schedule, "blind").allocate()
        assert (
            estimate_interconnect(rules).mux_inputs
            <= estimate_interconnect(blind).mux_inputs
        )

    def test_register_count_optimal(self):
        """Rules reuse the left-edge register phase, so register counts
        stay at the max-live bound."""
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocation = RuleBasedAllocator(schedule).allocate()
        assert allocation.register_count == minimum_registers(
            compute_lifetimes(schedule)
        )

    def test_engine_integration(self):
        from repro.core import synthesize
        from repro.sim import check_equivalence
        from repro.workloads import SQRT_SOURCE

        design = synthesize(
            SQRT_SOURCE,
            allocator="rules",
            constraints=ResourceConstraints({"fu": 2}),
        )
        assert check_equivalence(
            design, vectors=[{"X": x} for x in (0.25, 0.9)]
        ).equivalent

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(1, 10_000), ops=st.integers(5, 20))
    def test_valid_on_random_dfgs(self, seed, ops):
        cdfg = random_dfg(RandomDFGSpec(ops=ops, seed=seed))
        schedule = scheduled(
            cdfg, ResourceConstraints({"add": 2, "mul": 2})
        )
        RuleBasedAllocator(schedule).allocate().validate()
