"""Tests for the scheduling substrate and all scheduler families."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.ir import OpKind
from repro.scheduling import (
    ALAPScheduler,
    ASAPScheduler,
    BranchAndBoundScheduler,
    ExhaustiveScheduler,
    ForceDirectedScheduler,
    FreedomBasedScheduler,
    ListScheduler,
    ResourceConstraints,
    Schedule,
    SchedulingProblem,
    TypedFUModel,
    UniversalFUModel,
    YSCScheduler,
    compute_time_frames,
    dependence_offset,
    total_steps,
)
from repro.scheduling.force_directed import distribution_graph
from repro.transforms import optimize
from repro.workloads import (
    RandomDFGSpec,
    ewf_cdfg,
    fig3_cdfg,
    fig5_cdfg,
    random_dfg,
    sqrt_cdfg,
)

UNIT = TypedFUModel(single_cycle=True)


def problem_of(cdfg, model=UNIT, constraints=None, time_limit=None):
    return SchedulingProblem.from_block(
        cdfg.blocks()[0], model, constraints, time_limit
    )


class TestDependenceOffset:
    def test_compute_to_compute(self):
        assert dependence_offset(1, 1) == 1
        assert dependence_offset(2, 1) == 2

    def test_compute_to_free_chains(self):
        """A free consumer lives in its producer's final step."""
        assert dependence_offset(1, 0) == 0
        assert dependence_offset(3, 0) == 2

    def test_free_to_anything_same_step(self):
        assert dependence_offset(0, 1) == 0
        assert dependence_offset(0, 0) == 0


class TestScheduleChecker:
    def test_detects_dependence_violation(self):
        problem = problem_of(fig3_cdfg())
        schedule = ASAPScheduler(problem).schedule()
        # Corrupt: move the chain's final add before its producer.
        add_ops = [
            op.id for op in problem.ops if op.kind is OpKind.ADD
        ]
        schedule.start[add_ops[-1]] = 0
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_detects_resource_violation(self):
        problem = problem_of(
            fig3_cdfg(), constraints=ResourceConstraints({"mul": 1})
        )
        start = {op.id: 0 for op in problem.ops}
        # Both multiplies in step 0 with a 1-multiplier limit.
        schedule = Schedule(problem, start, scheduler="bogus")
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_detects_missing_op(self):
        problem = problem_of(fig3_cdfg())
        schedule = Schedule(problem, {}, scheduler="bogus")
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_time_limit_enforced(self):
        problem = problem_of(fig3_cdfg(), time_limit=1)
        schedule = ASAPScheduler(problem).schedule()
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_table_rendering(self):
        problem = problem_of(fig3_cdfg())
        schedule = ASAPScheduler(problem).schedule()
        text = schedule.table()
        assert "step 0" in text


class TestASAPALAP:
    def test_asap_unconstrained_is_dataflow_depth(self):
        problem = problem_of(fig3_cdfg())
        schedule = ASAPScheduler(problem).schedule()
        schedule.validate()
        assert schedule.length == 3  # mul -> add -> add

    def test_fig3_asap_suboptimal(self):
        """Fig. 3: the non-critical multiply blocks the critical one."""
        problem = problem_of(
            fig3_cdfg(),
            constraints=ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = ASAPScheduler(problem).schedule()
        schedule.validate()
        assert schedule.length == 4

    def test_alap_respects_deadline(self):
        problem = problem_of(fig3_cdfg())
        schedule = ALAPScheduler(problem, deadline=5).schedule()
        schedule.validate()
        assert schedule.length <= 5
        # Sinks sit at the end under ALAP.
        add_ids = [op.id for op in problem.ops if op.kind is OpKind.ADD]
        assert schedule.end(add_ids[-1]) == 4

    def test_alap_infeasible_deadline(self):
        problem = problem_of(fig3_cdfg())
        with pytest.raises(SchedulingError):
            ALAPScheduler(problem, deadline=2).schedule()

    def test_time_frames(self):
        problem = problem_of(fig5_cdfg())
        frames = compute_time_frames(problem, 3)
        add_ids = [op.id for op in problem.ops if op.kind is OpKind.ADD]
        a1, a2, a3 = add_ids
        assert list(frames.frame(a1)) == [0]
        assert list(frames.frame(a2)) == [1]
        assert list(frames.frame(a3)) == [1, 2]
        assert frames.mobility(a3) == 1
        assert a1 in frames.critical_ops()


class TestListScheduler:
    def test_fig4_list_optimal(self):
        """Fig. 4: path-length priority recovers the 3-step optimum."""
        problem = problem_of(
            fig3_cdfg(),
            constraints=ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = ListScheduler(problem, "path_length").schedule()
        schedule.validate()
        assert schedule.length == 3

    @pytest.mark.parametrize("priority", ["path_length", "urgency",
                                          "mobility"])
    def test_all_priorities_legal(self, priority):
        cdfg = ewf_cdfg()
        problem = problem_of(
            cdfg, constraints=ResourceConstraints({"add": 2, "mul": 1})
        )
        schedule = ListScheduler(problem, priority).schedule()
        schedule.validate()

    def test_respects_limits(self):
        problem = problem_of(
            ewf_cdfg(), constraints=ResourceConstraints({"add": 1,
                                                         "mul": 1})
        )
        schedule = ListScheduler(problem).schedule()
        schedule.validate()
        usage = schedule.resource_usage()
        assert usage["add"] == 1
        assert usage["mul"] == 1

    def test_multicycle_ops(self):
        model = TypedFUModel(delays={"mul": 3})
        problem = problem_of(
            ewf_cdfg(), model=model,
            constraints=ResourceConstraints({"add": 1, "mul": 1}),
        )
        schedule = ListScheduler(problem).schedule()
        schedule.validate()


class TestForceDirected:
    def test_fig5_distribution_graph(self):
        """Fig. 5's add distribution graph is exactly [1, 1.5, 0.5]."""
        problem = problem_of(fig5_cdfg())
        frames = compute_time_frames(problem, 3)
        assert distribution_graph(problem, frames, "add") == [1.0, 1.5, 0.5]

    def test_fig5_balances_a3_into_last_step(self):
        problem = problem_of(fig5_cdfg(), time_limit=3)
        scheduler = ForceDirectedScheduler(problem, deadline=3)
        schedule = scheduler.schedule()
        schedule.validate()
        add_ids = [op.id for op in problem.ops if op.kind is OpKind.ADD]
        a3 = add_ids[2]
        assert schedule.start[a3] == 2
        assert schedule.resource_usage()["add"] == 1

    def test_minimizes_fus_vs_asap(self):
        """Time-constrained FDS should never need more adders than the
        naive dataflow schedule at the same deadline."""
        problem = problem_of(ewf_cdfg())
        asap = ASAPScheduler(problem).schedule()
        deadline = asap.length
        fds = ForceDirectedScheduler(problem, deadline=deadline).schedule()
        fds.validate()
        assert fds.length <= deadline
        assert (
            fds.resource_usage()["add"]
            <= asap.resource_usage()["add"]
        )

    def test_infeasible_deadline_raises(self):
        problem = problem_of(fig3_cdfg())
        with pytest.raises(SchedulingError):
            ForceDirectedScheduler(problem, deadline=2).schedule()


class TestFreedomBased:
    def test_produces_fu_assignment(self):
        problem = problem_of(fig5_cdfg())
        scheduler = FreedomBasedScheduler(problem, deadline=3)
        schedule = scheduler.schedule()
        schedule.validate()
        assert scheduler.fu_assignment
        # Every resource op assigned; classes consistent.
        for op_id, (cls, _) in scheduler.fu_assignment.items():
            assert problem.op_class(op_id) == cls

    def test_no_overlap_on_shared_units(self):
        problem = problem_of(ewf_cdfg())
        scheduler = FreedomBasedScheduler(problem)
        schedule = scheduler.schedule()
        schedule.validate()
        by_unit = {}
        for op_id, unit in scheduler.fu_assignment.items():
            by_unit.setdefault(unit, []).append(op_id)
        for op_ids in by_unit.values():
            spans = sorted(
                (schedule.start[i], schedule.end(i)) for i in op_ids
            )
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 > e1

    def test_respects_unit_caps_by_stretching(self):
        problem = problem_of(
            ewf_cdfg(), constraints=ResourceConstraints({"add": 1,
                                                         "mul": 1})
        )
        scheduler = FreedomBasedScheduler(problem)
        schedule = scheduler.schedule()
        schedule.validate()
        assert schedule.resource_usage()["add"] == 1


class TestTransformational:
    def test_bnb_optimal_on_fig3(self):
        problem = problem_of(
            fig3_cdfg(),
            constraints=ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = BranchAndBoundScheduler(problem).schedule()
        schedule.validate()
        assert schedule.length == 3

    def test_exhaustive_matches_bnb(self):
        problem = problem_of(
            fig3_cdfg(),
            constraints=ResourceConstraints({"mul": 1, "add": 1}),
        )
        exhaustive = ExhaustiveScheduler(problem).schedule()
        bnb = BranchAndBoundScheduler(problem).schedule()
        assert exhaustive.length == bnb.length

    def test_pruning_visits_fewer_states(self):
        """The paper's cost argument: exhaustive search explores far
        more of the space than branch-and-bound."""
        problem = problem_of(
            fig5_cdfg(), constraints=ResourceConstraints({"add": 1,
                                                          "mul": 2})
        )
        exhaustive = ExhaustiveScheduler(problem)
        exhaustive.schedule()
        bnb = BranchAndBoundScheduler(problem)
        bnb.schedule()
        assert bnb.states_visited <= exhaustive.states_visited

    def test_size_cap(self):
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(problem_of(ewf_cdfg()), max_ops=10)

    def test_bnb_never_worse_than_list(self):
        for seed in (1, 2, 3):
            cdfg = random_dfg(RandomDFGSpec(ops=10, seed=seed))
            problem = problem_of(
                cdfg, constraints=ResourceConstraints({"add": 1,
                                                       "mul": 1})
            )
            lst = ListScheduler(problem).schedule()
            bnb = BranchAndBoundScheduler(problem).schedule()
            bnb.validate()
            assert bnb.length <= lst.length

    def test_ysc_feasible(self):
        problem = problem_of(
            ewf_cdfg(), constraints=ResourceConstraints({"add": 2,
                                                         "mul": 1})
        )
        schedule = YSCScheduler(problem).schedule()
        schedule.validate()

    def test_ysc_unconstrained_is_asap(self):
        problem = problem_of(fig3_cdfg())
        ysc = YSCScheduler(problem).schedule()
        asap = ASAPScheduler(problem).schedule()
        assert ysc.start == asap.start


class TestSchedulerProperties:
    """Cross-scheduler invariants on random DFGs (hypothesis)."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(1, 10_000), ops=st.integers(5, 30),
           adders=st.integers(1, 3), muls=st.integers(1, 3))
    def test_all_schedulers_produce_legal_schedules(
        self, seed, ops, adders, muls
    ):
        cdfg = random_dfg(RandomDFGSpec(ops=ops, seed=seed))
        constraints = ResourceConstraints({"add": adders, "mul": muls})
        problem = problem_of(cdfg, constraints=constraints)
        for factory in (
            ASAPScheduler,
            ListScheduler,
            YSCScheduler,
        ):
            factory(problem).schedule().validate()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(1, 10_000), ops=st.integers(5, 20))
    def test_list_and_asap_bounded_with_tight_resources(
        self, seed, ops
    ):
        cdfg = random_dfg(RandomDFGSpec(ops=ops, seed=seed))
        constraints = ResourceConstraints({"add": 1, "mul": 1})
        problem = problem_of(cdfg, constraints=constraints)
        asap = ASAPScheduler(problem).schedule()
        lst = ListScheduler(problem).schedule()
        # Neither greedy order dominates pointwise (seed 4994 / 9 ops:
        # the priority list takes 6 steps where fixed-order ASAP takes
        # 5), so pin the bounds both must satisfy: legal, at least the
        # unconstrained critical path, at most fully serial.
        critical_path = ASAPScheduler(problem_of(cdfg)).schedule().length
        for schedule in (asap, lst):
            schedule.validate()
            assert critical_path <= schedule.length <= len(problem.ops)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(1, 10_000), ops=st.integers(5, 25))
    def test_fds_fits_deadline(self, seed, ops):
        cdfg = random_dfg(RandomDFGSpec(ops=ops, seed=seed))
        problem = problem_of(cdfg)
        asap_length = ASAPScheduler(problem).schedule().length
        schedule = ForceDirectedScheduler(
            problem, deadline=asap_length
        ).schedule()
        schedule.validate()
        assert schedule.length <= asap_length


class TestPaperArithmetic:
    """The in-text schedule-length arithmetic of §2."""

    def test_serial_case_23_steps(self):
        cdfg = sqrt_cdfg()
        from repro.transforms import PassManager, TripCountAnalysis

        PassManager([TripCountAnalysis()]).run(cdfg)
        model = UniversalFUModel(count_bare_moves=True)
        lengths = {}
        for block in cdfg.blocks():
            problem = SchedulingProblem.from_block(
                block, model, ResourceConstraints({"fu": 1})
            )
            schedule = ListScheduler(problem).schedule()
            schedule.validate()
            lengths[block.id] = schedule.length
        assert total_steps(cdfg, lengths) == 23  # 3 + 4x5

    def test_parallel_case_10_steps(self):
        cdfg = sqrt_cdfg()
        optimize(cdfg)
        model = UniversalFUModel(count_bare_moves=True)
        lengths = {}
        for block in cdfg.blocks():
            problem = SchedulingProblem.from_block(
                block, model, ResourceConstraints({"fu": 2})
            )
            schedule = ListScheduler(problem).schedule()
            schedule.validate()
            lengths[block.id] = schedule.length
        assert total_steps(cdfg, lengths) == 10  # 2 + 4x2

    def test_total_steps_branch_takes_worst_arm(self):
        from repro.lang import compile_source

        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a > 0 then
    b := a * a + 1;
  else
    b := a;
end
""")
        lengths = {block.id: index + 1
                   for index, block in enumerate(cdfg.blocks())}
        # cond block + max(then, else)
        blocks = cdfg.blocks()
        expected = lengths[blocks[0].id] + max(
            lengths[blocks[1].id], lengths[blocks[2].id]
        )
        assert total_steps(cdfg, lengths) == expected
