"""Tests for constraint-driven search, JSON export and frontend fuzzing."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import synthesize
from repro.errors import FrontendError
from repro.explore import explore_fu_range, search_for_latency
from repro.lang import parse, tokenize
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE


class TestLatencySearch:
    def test_finds_smallest_budget(self):
        """sqrt needs 2 FUs for 10 cycles; 1 FU gives 19."""
        point = search_for_latency(SQRT_SOURCE, target_cycles=10,
                                   max_units=4)
        assert point is not None
        assert point.constraints.limit("fu") == 2
        assert point.cycles <= 10

    def test_loose_target_needs_one_unit(self):
        point = search_for_latency(SQRT_SOURCE, target_cycles=100,
                                   max_units=4)
        assert point is not None
        assert point.constraints.limit("fu") == 1

    def test_impossible_target(self):
        point = search_for_latency(SQRT_SOURCE, target_cycles=3,
                                   max_units=4)
        assert point is None

    def test_agrees_with_sweep(self):
        sweep = explore_fu_range(SQRT_SOURCE, [1, 2, 3])
        target = sweep.points[1].cycles  # what 2 FUs achieve
        found = search_for_latency(SQRT_SOURCE, target_cycles=target,
                                   max_units=3)
        assert found is not None
        assert found.constraints.limit("fu") == 2

    def test_impossible_target_consistent_across_jobs(self):
        """Regression pin: both the serial and the parallel search
        build the unconstrained ceiling first, so an impossible target
        returns None from *both* paths — neither may raise or return a
        partial point."""
        for n_jobs in (1, 2):
            point = search_for_latency(
                SQRT_SOURCE, target_cycles=3, max_units=4,
                n_jobs=n_jobs, use_cache=False,
            )
            assert point is None, f"n_jobs={n_jobs} found {point}"

    def test_feasible_target_consistent_across_jobs(self):
        serial = search_for_latency(SQRT_SOURCE, target_cycles=10,
                                    max_units=4, n_jobs=1,
                                    use_cache=False)
        parallel = search_for_latency(SQRT_SOURCE, target_cycles=10,
                                      max_units=4, n_jobs=2,
                                      use_cache=False)
        assert serial is not None and parallel is not None
        assert serial.constraints.limit("fu") == \
            parallel.constraints.limit("fu") == 2
        assert serial.cycles == parallel.cycles


class TestJSONExport:
    def test_round_trips_through_json(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        payload = design.to_dict()
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["name"] == "sqrt"
        assert restored["states"] == 4
        assert restored["functional_units"] == 2
        assert restored["scheduler"] == "list"

    def test_schedule_steps_match(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        payload = design.to_dict()
        for label, steps in payload["schedules"].items():
            schedule = next(
                s for s in design.schedules.values()
                if s.problem.label == label
            )
            assert len(steps) == schedule.length
            listed = sum(len(cells) for cells in steps)
            assert listed == len(schedule.problem.ops)

    def test_binding_section(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        payload = design.to_dict()
        assert any(
            entry["component"] == "universal"
            for entry in payload["binding"].values()
        )

    def test_log_preserved(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        assert design.to_dict()["log"] == design.log


_TOKEN_POOL = [
    "procedure", "begin", "end", "if", "then", "else", "while", "do",
    "repeat", "until", "for", "to", "var", "input", "output",
    "int", "uint", "fixed", "(", ")", "<", ">", ";", ":", ",", ":=",
    "+", "-", "*", "/", "x", "y", "p", "0", "1", "8", "3.5", "[", "]",
]


class TestFrontendFuzz:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(_TOKEN_POOL), max_size=40))
    def test_parser_never_crashes(self, pieces):
        """Arbitrary token soup either parses or raises a *frontend*
        error — never an unhandled exception."""
        source = " ".join(pieces)
        try:
            parse(source)
        except FrontendError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=60))
    def test_lexer_never_crashes(self, source):
        try:
            tokenize(source)
        except FrontendError:
            pass
