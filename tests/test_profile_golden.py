"""Golden test for the ``repro profile`` table.

Durations flake, layout must not: every float is masked together
with its left padding, replacing the whole fixed-width field with an
equal-width ``#.##`` token.  Because the table right-aligns numbers
into constant-width columns, the masked text is byte-identical no
matter what was measured — while stage names, call counts, column
headers and the title stay pinned exactly.
"""

import re
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.workloads import SQRT_SOURCE

GOLDEN = Path(__file__).resolve().parent / "golden"


def mask_floats(text: str) -> str:
    """Mask ``<padding><float>`` fields, preserving total width."""
    return re.sub(
        r" *\d+\.\d+",
        lambda m: " " * (len(m.group()) - 4) + "#.##",
        text,
    )


def mask_json_floats(text: str) -> str:
    """Mask floats in JSON output (no alignment to preserve)."""
    return re.sub(r"\d+\.\d+", "#.##", text)


@pytest.fixture
def sqrt_file(tmp_path):
    path = tmp_path / "sqrt.bsl"
    path.write_text(SQRT_SOURCE)
    return str(path)


class TestProfileGolden:
    def test_profile_table_matches_golden(self, sqrt_file, capsys):
        assert main(["profile", sqrt_file, "--fu", "2"]) == 0
        out = capsys.readouterr().out
        golden = (GOLDEN / "cli_profile_sqrt.txt").read_text()
        assert mask_floats(out) == golden

    def test_masking_is_width_preserving_and_value_independent(self):
        narrow = "  schedule         2       1.13    20.5%"
        wide = "  schedule         2      31.13     6.5%"
        assert len(mask_floats(narrow)) == len(narrow)
        assert mask_floats(narrow) == mask_floats(wide) == (
            "  schedule         2       #.##    #.##%"
        )

    def test_profile_json_matches_golden(self, sqrt_file, capsys):
        """``--format json`` is machine-facing API surface: keys,
        nesting and integer fields (calls, counts) are pinned; only
        measured floats are masked."""
        assert main([
            "profile", sqrt_file, "--fu", "2", "--format", "json",
        ]) == 0
        out = capsys.readouterr().out
        golden = (GOLDEN / "cli_profile_sqrt.json").read_text()
        assert mask_json_floats(out) == golden

    def test_profile_json_is_valid_json(self, sqrt_file, capsys):
        import json

        assert main([
            "profile", sqrt_file, "--fu", "2", "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["design"] == "sqrt"
        assert doc["total_us"] > 0
        assert set(doc["stages"]) >= {"compile", "schedule", "bind"}
        for entry in doc["percentiles"].values():
            assert entry["p50"] <= entry["p95"] <= entry["p99"]

    def test_profile_writes_optional_chrome_trace(self, sqrt_file,
                                                  tmp_path, capsys):
        out_path = tmp_path / "profile-trace.json"
        assert main([
            "profile", sqrt_file, "--fu", "2",
            "--out", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert "traceEvents" in out_path.read_text()
