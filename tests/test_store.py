"""The persistent design store: keys, two-tier protocol, concurrency.

Covers the satellite guarantees of the store work: LRU recency on the
in-memory tier, disk round-trips across a cleared LRU (standing in
for a process restart), unstorable options bypassing the disk tier,
corruption-as-miss, key stability/sensitivity, racing writers, the
crash-mid-persist window, and the ``repro cache`` CLI verbs.
"""

from __future__ import annotations

import pickle

import pytest

from repro.__main__ import main
from repro.core import (
    SynthesisCache,
    SynthesisOptions,
    clear_synthesis_cache,
    source_digest,
    synthesize,
)
from repro.exec import run_tasks
from repro.obs import metrics
from repro.scheduling import ResourceConstraints, ResourceModel, TypedFUModel
from repro.store import (
    DesignStore,
    active_store,
    configure_store,
    options_token,
    reset_store,
    store_key,
)
from repro.workloads import SQRT_SOURCE


# ----------------------------------------------------------------------
# Satellite: the in-memory LRU must refresh recency on get().

def test_lru_get_refreshes_recency():
    cache = SynthesisCache(max_entries=2)
    cache.put(("a",), "design-a")
    cache.put(("b",), "design-b")
    # Touch a: it becomes most-recent, so inserting c must evict b.
    assert cache.get(("a",)) == "design-a"
    cache.put(("c",), "design-c")
    assert cache.get(("a",)) == "design-a"
    assert cache.get(("b",)) is None
    assert cache.get(("c",)) == "design-c"
    assert len(cache) == 2


# ----------------------------------------------------------------------
# Key schema.

def test_store_key_is_stable_across_equal_options():
    digest = source_digest(SQRT_SOURCE)
    a = SynthesisOptions(model=TypedFUModel(),
                         constraints=ResourceConstraints({"fu": 2}))
    b = SynthesisOptions(model=TypedFUModel(),
                         constraints=ResourceConstraints({"fu": 2}))
    # Distinct model instances, equal values: identical disk keys —
    # this is what the in-memory identity key cannot provide.
    assert a.cache_key() != b.cache_key()
    assert store_key(digest, None, a) == store_key(digest, None, b)


def test_store_key_varies_with_every_knob():
    digest = source_digest(SQRT_SOURCE)
    base = SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))
    baseline = store_key(digest, None, base)
    assert baseline is not None
    variants = [
        store_key("other-digest", None, base),
        store_key(digest, "main", base),
        store_key(digest, None, SynthesisOptions(
            constraints=ResourceConstraints({"fu": 3}))),
        store_key(digest, None, SynthesisOptions(
            scheduler="force-directed",
            constraints=ResourceConstraints({"fu": 2}))),
        store_key(digest, None, SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}),
            optimize_ir=False)),
    ]
    assert baseline not in variants
    assert len(set(variants)) == len(variants)


def test_custom_model_without_token_is_unstorable():
    class Opaque(ResourceModel):
        def classify(self, op):  # pragma: no cover - never scheduled
            return "fu"

        def delay(self, op):  # pragma: no cover - never scheduled
            return 1

    options = SynthesisOptions(model=Opaque())
    assert options_token(options) is None
    assert store_key("digest", None, options) is None


def test_unstorable_options_bypass_store(tmp_path):
    class Opaque(TypedFUModel):
        def cache_token(self):
            return None

    store = configure_store(tmp_path / "designs")
    synthesize(SQRT_SOURCE, options=SynthesisOptions(model=Opaque()),
               use_cache=True)
    assert store.stats()["entries"] == 0
    assert metrics().counter("store.persists").value == 0


# ----------------------------------------------------------------------
# Two-tier round trips.

def test_store_round_trip_across_cleared_lru(tmp_path):
    configure_store(tmp_path / "designs")
    options = SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))
    first = synthesize(SQRT_SOURCE, options=options, use_cache=True)
    assert metrics().counter("store.persists").value == 1

    # A cleared LRU models a fresh process: the design must come back
    # from disk, not be re-synthesized.
    clear_synthesis_cache()
    runs_before = metrics().counter("scheduler.invocations",
                                    scheduler="list").value
    second = synthesize(SQRT_SOURCE, options=options, use_cache=True)
    assert metrics().counter("store.hits").value == 1
    assert metrics().counter("scheduler.invocations",
                             scheduler="list").value == runs_before
    assert second.stage_signatures() == first.stage_signatures()

    # The disk hit was re-inserted into the LRU: a third lookup stays
    # in memory.
    hits_before = metrics().counter("store.hits").value
    synthesize(SQRT_SOURCE, options=options, use_cache=True)
    assert metrics().counter("store.hits").value == hits_before


def test_corrupt_entry_is_a_miss_and_reclaimed(tmp_path):
    store = configure_store(tmp_path / "designs")
    options = SynthesisOptions()
    synthesize(SQRT_SOURCE, options=options, use_cache=True)
    key = store_key(source_digest(SQRT_SOURCE), None, options)
    path = store._path(key)
    path.write_bytes(b"torn write garbage")

    clear_synthesis_cache()
    design = synthesize(SQRT_SOURCE, options=options, use_cache=True)
    assert design is not None
    assert metrics().counter("store.corrupt").value == 1
    # The corrupt file was removed and then re-persisted by the miss.
    assert pickle.loads(path.read_bytes()) is not None


def test_store_disabled_by_default():
    assert active_store() is None


def test_configure_none_beats_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
    reset_store()
    assert active_store() is not None
    configure_store(None)
    assert active_store() is None


def test_env_kill_switch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_STORE", "0")
    reset_store()
    assert active_store() is None


# ----------------------------------------------------------------------
# Maintenance: stats / gc / clear.

def test_gc_prunes_entries_temps_and_stale_versions(tmp_path):
    root = tmp_path / "designs"
    store = configure_store(root)
    for limit in (1, 2, 3):
        synthesize(SQRT_SOURCE, use_cache=True, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": limit})))
    assert store.stats()["entries"] == 3

    stale = root / "v0" / "ab"
    stale.mkdir(parents=True)
    (stale / "old.pkl").write_bytes(b"x")
    orphan = store.version_dir / "ab"
    orphan.mkdir(parents=True, exist_ok=True)
    (orphan / ".tmp-deadbeef-1-abc").write_bytes(b"partial")
    assert store.stats()["temp_files"] == 1

    removed = store.gc(max_entries=1, tmp_grace_s=0.0)
    assert removed == {"entries": 2, "temp_files": 1,
                       "stale_versions": 1}
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["temp_files"] == 0
    assert not (root / "v0").exists()


def test_gc_grace_period_protects_live_temps(tmp_path):
    store = DesignStore(tmp_path)
    live = store.version_dir / "ab"
    live.mkdir(parents=True)
    (live / ".tmp-deadbeef-1-abc").write_bytes(b"in flight")
    removed = store.gc()  # default grace: a fresh temp survives
    assert removed["temp_files"] == 0
    assert store.stats()["temp_files"] == 1


def test_clear_removes_everything(tmp_path):
    store = configure_store(tmp_path / "designs")
    synthesize(SQRT_SOURCE, use_cache=True)
    assert store.stats()["entries"] == 1
    store.clear()
    assert store.stats()["entries"] == 0
    assert not store.version_dir.exists()


# ----------------------------------------------------------------------
# Concurrency: repro.exec workers racing on one key.

def _persist_task(payload: dict) -> bool:
    """Worker-side: synthesize with the two-tier cache against the
    shipped store directory (module-level for pickling)."""
    configure_store(payload["store_dir"])
    options = SynthesisOptions(
        constraints=ResourceConstraints({"fu": payload["fu"]})
    )
    design = synthesize(payload["source"], options=options,
                        use_cache=True)
    return design is not None


def test_racing_workers_do_not_corrupt_the_store(tmp_path):
    root = tmp_path / "designs"
    payload = {"store_dir": str(root), "source": SQRT_SOURCE, "fu": 2}
    batch = run_tasks(_persist_task, [payload, payload],
                      labels=["race0", "race1"], max_workers=2)
    assert [o.value for o in batch.outcomes] == [True, True]

    store = DesignStore(root)
    stats = store.stats()
    # Both writers published the same content address; last rename
    # won and the surviving entry must deserialize.
    assert stats["entries"] == 1
    assert stats["temp_files"] == 0
    options = SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))
    key = store_key(source_digest(SQRT_SOURCE), None, options)
    assert store.get(key) is not None


@pytest.mark.fault_smoke
def test_crash_mid_persist_leaves_only_temps(tmp_path, monkeypatch):
    """A worker dying between temp-write and rename must cost nothing:
    no partial entry, the parent fallback persists, gc reclaims the
    orphaned temps."""
    monkeypatch.setenv("REPRO_FAULT", "crash:store.persist:worker")
    root = tmp_path / "designs"
    payload = {"store_dir": str(root), "source": SQRT_SOURCE, "fu": 2}

    def fallback(task_payload, index):
        # Parent scope: the worker-scoped fault does not fire here.
        configure_store(task_payload["store_dir"])
        return _persist_task(task_payload)

    batch = run_tasks(_persist_task, [payload], labels=["crash0"],
                      max_workers=1, max_retries=1, backoff_s=0.01,
                      fallback=fallback)
    assert batch.outcomes[0].value is True
    assert batch.outcomes[0].degraded

    store = DesignStore(root)
    stats = store.stats()
    assert stats["entries"] == 1        # the parent's publish
    assert stats["temp_files"] >= 1     # the crashed attempts' orphans
    removed = store.gc(tmp_grace_s=0.0)
    assert removed["temp_files"] == stats["temp_files"]
    assert store.stats()["temp_files"] == 0
    options = SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))
    key = store_key(source_digest(SQRT_SOURCE), None, options)
    assert store.get(key) is not None


# ----------------------------------------------------------------------
# CLI verbs.

def test_cache_cli_stats_gc_clear(tmp_path, capsys):
    root = tmp_path / "designs"
    configure_store(root)
    synthesize(SQRT_SOURCE, use_cache=True)

    assert main(["cache", "stats", "--dir", str(root)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "1" in out

    assert main(["cache", "gc", "--dir", str(root),
                 "--max-entries", "0"]) == 0
    assert "removed 1 entries" in capsys.readouterr().out

    synthesize(SQRT_SOURCE, use_cache=True)
    assert main(["cache", "clear", "--dir", str(root)]) == 0
    assert "cleared" in capsys.readouterr().out
    assert DesignStore(root).stats()["entries"] == 0


def test_cache_cli_stats_json(tmp_path, capsys):
    import json

    assert main(["cache", "stats", "--dir", str(tmp_path),
                 "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 0
    assert stats["schema_version"] >= 1


def test_synth_cli_store_flag(tmp_path, capsys, monkeypatch):
    sqrt_file = tmp_path / "sqrt.bsl"
    sqrt_file.write_text(SQRT_SOURCE)
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "designs"))
    reset_store()
    assert main(["synth", str(sqrt_file), "--fu", "2",
                 "--store"]) == 0
    capsys.readouterr()
    assert DesignStore(tmp_path / "designs").stats()["entries"] == 1

    # --no-store must win over the environment.
    assert main(["synth", str(sqrt_file), "--fu", "2",
                 "--no-store"]) == 0
    capsys.readouterr()
    assert metrics().counter("store.hits").value == 0
