"""Unit tests for the IR core: opcodes, values, blocks, CDFG, DFG."""

import pytest

from repro.errors import IRError
from repro.ir import (
    CDFG,
    BlockRegion,
    IntType,
    LoopRegion,
    OpKind,
    SeqRegion,
    dependence_graph,
    op_info,
)
from repro.ir.dfg import (
    critical_path_length,
    path_length_from_source,
    path_length_to_sink,
    topological_order,
    transitive_predecessors,
    transitive_successors,
)
from repro.ir.dot import cdfg_dot, dataflow_dot
from repro.ir.opcodes import COMMUTATIVE, COMPARISONS, NEGATED_COMPARE
from repro.ir.types import ArrayType

WORD = IntType(16)


def make_block():
    cdfg = CDFG("t")
    cdfg.add_input("a", WORD)
    cdfg.add_input("b", WORD)
    cdfg.add_output("o", WORD)
    block = cdfg.new_block()
    cdfg.body = BlockRegion(block)
    return cdfg, block


class TestOpcodes:
    def test_every_kind_has_info(self):
        for kind in OpKind:
            info = op_info(kind)
            assert info.symbol

    def test_commutative_set(self):
        assert OpKind.ADD in COMMUTATIVE
        assert OpKind.SUB not in COMMUTATIVE

    def test_comparisons_negation_is_involution(self):
        for kind in COMPARISONS:
            assert NEGATED_COMPARE[NEGATED_COMPARE[kind]] is kind

    def test_sinks_have_no_result(self):
        assert not op_info(OpKind.VAR_WRITE).has_result
        assert not op_info(OpKind.STORE).has_result
        assert op_info(OpKind.ADD).has_result


class TestBlockEmission:
    def test_emit_wires_uses(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        assert a.uses == [(add, 0)]
        assert b.uses == [(add, 1)]
        assert add.result.producer is add

    def test_arity_checked(self):
        _, block = make_block()
        a = block.read("a", WORD)
        with pytest.raises(IRError):
            block.emit(OpKind.ADD, [a], WORD)

    def test_result_type_required(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        with pytest.raises(IRError):
            block.emit(OpKind.ADD, [a, b])

    def test_compare_defaults_to_bool(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        cmp_op = block.emit(OpKind.LT, [a, b])
        assert cmp_op.result.type.width == 1

    def test_remove_op_with_uses_rejected(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        block.write("o", add.result)
        with pytest.raises(IRError):
            block.remove_op(add)

    def test_remove_op_cleans_uses(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        block.remove_op(add)
        assert a.uses == []
        assert add not in block.ops

    def test_replace_all_uses(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        block.write("o", add.result)
        block.replace_all_uses(add.result, a)
        write = block.var_writes()["o"]
        assert write.operands[0] is a
        assert add.result.uses == []

    def test_retopo_detects_cycle(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add1 = block.emit(OpKind.ADD, [a, b], WORD)
        add2 = block.emit(OpKind.ADD, [add1.result, b], WORD)
        # Manually create a cycle.
        add1.replace_operand(0, add2.result)
        with pytest.raises(IRError):
            block.retopo()

    def test_validate_catches_use_before_def(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        # Move the add before its operand's producer.
        block.ops.remove(add)
        block.ops.insert(0, add)
        with pytest.raises(IRError):
            block.validate()

    def test_compute_ops_excludes_plumbing(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        block.write("o", add.result)
        assert block.compute_ops() == [add]


class TestCDFG:
    def test_duplicate_declaration_rejected(self):
        cdfg = CDFG("t")
        cdfg.add_variable("x", WORD)
        with pytest.raises(IRError):
            cdfg.add_variable("x", WORD)

    def test_arrays_become_memories(self):
        cdfg = CDFG("t")
        cdfg.add_variable("m", ArrayType(WORD, 8))
        assert "m" in cdfg.memories
        assert "m" not in cdfg.variables

    def test_type_of(self):
        cdfg = CDFG("t")
        cdfg.add_variable("x", WORD)
        assert cdfg.type_of("x") == WORD
        with pytest.raises(IRError):
            cdfg.type_of("nope")

    def test_validate_rejects_undeclared_var(self):
        cdfg, block = make_block()
        block.read("undeclared_name", WORD)
        with pytest.raises(IRError):
            cdfg.validate()

    def test_loops_listed(self):
        cdfg, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        cond = block.emit(OpKind.LT, [a, b])
        loop = LoopRegion(
            body=BlockRegion(block),
            test_block=block,
            cond=cond.result,
            exit_on_true=True,
            test_in_body=True,
        )
        cdfg.body = SeqRegion([loop])
        assert cdfg.loops() == [loop]


class TestDependenceGraph:
    def test_data_edges(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        mul = block.emit(OpKind.MUL, [add.result, b], WORD)
        graph = dependence_graph(block.ops)
        assert graph.has_edge(add.id, mul.id)
        assert graph.edges[add.id, mul.id]["reason"] == "data"

    def test_memory_serialization(self):
        cdfg = CDFG("t")
        cdfg.add_variable("m", ArrayType(WORD, 4))
        block = cdfg.new_block()
        cdfg.body = BlockRegion(block)
        idx = block.const(0, IntType(2, signed=False))
        val = block.const(7, WORD)
        load1 = block.emit(OpKind.LOAD, [idx], WORD, memory="m")
        store = block.emit(OpKind.STORE, [idx, val], memory="m")
        load2 = block.emit(OpKind.LOAD, [idx], WORD, memory="m")
        graph = dependence_graph(block.ops)
        assert graph.has_edge(load1.id, store.id)   # load before store
        assert graph.has_edge(store.id, load2.id)   # store before load

    def test_independent_memories_not_serialized(self):
        cdfg = CDFG("t")
        cdfg.add_variable("m1", ArrayType(WORD, 4))
        cdfg.add_variable("m2", ArrayType(WORD, 4))
        block = cdfg.new_block()
        cdfg.body = BlockRegion(block)
        idx = block.const(0, IntType(2, signed=False))
        val = block.const(7, WORD)
        store1 = block.emit(OpKind.STORE, [idx, val], memory="m1")
        store2 = block.emit(OpKind.STORE, [idx, val], memory="m2")
        graph = dependence_graph(block.ops)
        assert not graph.has_edge(store1.id, store2.id)

    def test_path_lengths(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        mul = block.emit(OpKind.MUL, [add.result, b], WORD)
        graph = dependence_graph(block.ops)
        delay = lambda op: 1  # noqa: E731
        to_sink = path_length_to_sink(graph, delay)
        assert to_sink[add.id] == 2
        assert to_sink[mul.id] == 1
        from_source = path_length_from_source(graph, delay)
        assert from_source[mul.id] == 2
        assert critical_path_length(graph, delay) == 3  # read→add→mul

    def test_topological_order_deterministic(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        block.emit(OpKind.ADD, [a, b], WORD)
        graph = dependence_graph(block.ops)
        assert topological_order(graph) == topological_order(graph)

    def test_transitive_sets(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        add = block.emit(OpKind.ADD, [a, b], WORD)
        mul = block.emit(OpKind.MUL, [add.result, b], WORD)
        graph = dependence_graph(block.ops)
        assert add.id in transitive_predecessors(graph, mul.id)
        assert mul.id in transitive_successors(graph, add.id)


class TestDot:
    def test_dataflow_dot_mentions_ops(self):
        _, block = make_block()
        a = block.read("a", WORD)
        b = block.read("b", WORD)
        block.emit(OpKind.ADD, [a, b], WORD)
        text = dataflow_dot(block)
        assert "digraph" in text
        assert "+" in text

    def test_cdfg_dot_renders_sqrt(self):
        from repro.workloads import sqrt_cdfg

        text = cdfg_dot(sqrt_cdfg())
        assert "cluster_" in text
        assert "loop" in text
