"""Property tests for the corpus mutators.

Two properties every mutator must satisfy: the mutated case is always
*buildable* (its recipe constructs a CDFG without raising — the
`DFGRecipe` constructor itself validates wiring, kinds, width and
domain), and mutation is *deterministic* given `(case, seed,
population)` so corpus runs replay exactly.
"""

import pytest

from repro.core.engine import ALLOCATORS, SCHEDULERS
from repro.verify import MUTATORS, mutate_case, seed_case
from repro.verify.corpus import _LCG
from repro.workloads import RECIPE_KINDS, RECIPE_WIDTHS, build_dfg


def _population(count=6, ops=10):
    return tuple(seed_case(seed, ops=ops) for seed in range(1, count + 1))


def _check_buildable(case):
    build_dfg(case.recipe)  # raises on any invalid wiring/kind/width
    assert case.scheduler in SCHEDULERS
    assert case.allocator in ALLOCATORS
    assert case.recipe.width in RECIPE_WIDTHS
    kinds = RECIPE_KINDS[case.recipe.domain]
    assert all(kind in kinds for kind, _, _ in case.recipe.ops)


@pytest.mark.parametrize("name", sorted(MUTATORS))
def test_mutator_yields_buildable_case(name):
    """Whenever a mutator applies, the result builds a valid CDFG."""
    mutator = MUTATORS[name]
    population = _population()
    applied = 0
    for case in population:
        for seed in range(1, 30):
            mutated = mutator(case, _LCG(seed), population)
            if mutated is None:
                continue  # mutator declined (e.g. shrink at 1 op)
            applied += 1
            assert mutated != case
            _check_buildable(mutated)
    assert applied > 0, f"{name} never applied across the sweep"


def test_mutate_case_is_deterministic():
    population = _population()
    for case in population:
        for seed in (1, 17, 91, 4096):
            first = mutate_case(case, seed, population)
            second = mutate_case(case, seed, population)
            assert first == second
            assert first[1].key == second[1].key


def test_mutate_case_always_returns_a_case():
    """The dispatcher falls through inapplicable mutators; grow always
    applies, so mutation never comes back empty-handed."""
    population = _population()
    for seed in range(1, 60):
        name, mutated = mutate_case(population[0], seed, population)
        assert name in MUTATORS
        _check_buildable(mutated)


def test_every_mutator_is_reachable_from_the_dispatcher():
    """A seed sweep through mutate_case selects all ten mutators —
    pins the LCG bit-mixing fix that once starved half the table."""
    population = _population()
    chosen = set()
    rng = _LCG(99)
    for _ in range(400):
        case = population[rng.below(len(population))]
        name, _ = mutate_case(case, rng.next(), population)
        chosen.add(name)
        if len(chosen) == len(MUTATORS):
            break
    missing = set(MUTATORS) - chosen
    assert not missing, f"never selected: {sorted(missing)}"


def test_mutators_keep_recipes_rooted_at_inputs():
    """Shrink to exhaustion must never orphan the op list."""
    population = _population(count=3, ops=8)
    case = population[0]
    rng = _LCG(7)
    for _ in range(40):
        shrunk = MUTATORS["shrink"](case, rng, population)
        if shrunk is None:
            break
        _check_buildable(shrunk)
        case = shrunk
    assert len(case.recipe.ops) == 1
