"""Differential engine: the full combo matrix agrees on real and random
workloads, paired code paths agree stage-for-stage, and injected bugs
are localized to the right stage.
"""

import pytest

from repro.core.engine import ALLOCATORS, SCHEDULERS
from repro.errors import SchedulingError
from repro.scheduling import ListScheduler
from repro.verify import (
    check_all_paths,
    check_cached_paths,
    check_incremental_force_directed,
    check_parallel_paths,
    first_diverging_stage,
    run_differential,
)
from repro.workloads import (
    DIFFEQ_SOURCE,
    RandomDFGSpec,
    SQRT_SOURCE,
    random_dfg,
    sqrt_cdfg,
)


class TestFullMatrix:
    def test_sqrt_all_combos_agree(self):
        report = run_differential(SQRT_SOURCE)
        assert report.ok, report.render()
        assert len(report.combos) == len(SCHEDULERS) * len(ALLOCATORS)

    def test_diffeq_subset_agrees(self):
        report = run_differential(
            DIFFEQ_SOURCE,
            schedulers=["list", "force-directed"],
            allocators=["left-edge", "clique"],
        )
        assert report.ok, report.render()

    def test_report_render_lists_every_combo(self):
        report = run_differential(
            sqrt_cdfg, schedulers=["asap"], allocators=["left-edge"]
        )
        text = report.render()
        assert "PASS" in text
        assert "asap x left-edge" in text

    @pytest.mark.fuzz_smoke
    def test_random_dfg_matrix_no_divergence(self):
        """Acceptance: 25 fixed seeds through the full matrix."""
        for seed in range(1, 26):
            spec = RandomDFGSpec(ops=10, seed=seed)
            report = run_differential(
                lambda: random_dfg(spec), label=f"seed{seed}"
            )
            assert report.ok, report.render()


class TestPairedPaths:
    def test_cached_matches_uncached(self):
        result = check_cached_paths(SQRT_SOURCE)
        assert result.ok, result.render()

    def test_serial_matches_parallel(self):
        result = check_parallel_paths(SQRT_SOURCE, limits=(1, 2))
        assert result.ok, result.render()

    def test_incremental_fds_matches_reference(self):
        result = check_incremental_force_directed(SQRT_SOURCE)
        assert result.ok, result.render()

    def test_check_all_paths(self):
        results = check_all_paths(SQRT_SOURCE, limits=(1, 2))
        assert [r.name for r in results] == [
            "cached-vs-uncached",
            "serial-vs-parallel",
            "incremental-vs-reference-fds",
        ]
        assert all(r.ok for r in results)

    def test_first_diverging_stage_names_scheduling(self):
        from repro.core import synthesize

        left = synthesize(SQRT_SOURCE, use_cache=False)
        right = synthesize(SQRT_SOURCE, use_cache=False)
        assert first_diverging_stage(left, right) is None
        schedule = next(iter(right.schedules.values()))
        op_id = next(iter(schedule.start))
        schedule.start[op_id] += 7
        divergence = first_diverging_stage(left, right)
        assert divergence is not None
        assert divergence[0] == "scheduling"


class TestInjectedBugs:
    def test_raising_scheduler_localized_to_scheduling(self, monkeypatch):
        class CrashingScheduler(ListScheduler):
            def schedule(self):
                raise SchedulingError("injected")

        monkeypatch.setitem(SCHEDULERS, "crashing", CrashingScheduler)
        report = run_differential(
            sqrt_cdfg, schedulers=["crashing"],
            allocators=["left-edge"],
        )
        assert not report.ok
        combo = report.failures()[0]
        assert combo.status == "error"
        assert combo.stage == "scheduling"
        assert "injected" in combo.diff["error"]

    def test_contract_violation_localized(self, monkeypatch):
        from repro.scheduling.base import Schedule

        class LyingScheduler(ListScheduler):
            def schedule(self):
                result = super().schedule()
                for op_id in result.start:
                    result.start[op_id] = 0
                return result

        monkeypatch.setitem(SCHEDULERS, "lying", LyingScheduler)
        monkeypatch.setattr(Schedule, "validate", lambda self: None)
        report = run_differential(
            sqrt_cdfg, schedulers=["lying"], allocators=["left-edge"]
        )
        assert not report.ok
        combo = report.failures()[0]
        assert combo.status in ("violations", "error")
        if combo.status == "violations":
            assert combo.stage == "scheduling"
            assert {v.kind for v in combo.violations} >= {"precedence"}

    def test_rtl_divergence_localized(self, monkeypatch):
        import repro.verify.differential as differential

        real_simulator = differential.RTLSimulator

        class WrongSim:
            def __init__(self, design):
                self._real = real_simulator(design)

            def run(self, inputs):
                outputs = self._real.run(inputs)
                return {
                    name: value + 1 for name, value in outputs.items()
                }

        monkeypatch.setattr(differential, "RTLSimulator", WrongSim)
        report = run_differential(
            sqrt_cdfg, schedulers=["list"], allocators=["left-edge"]
        )
        assert not report.ok
        combo = report.failures()[0]
        assert combo.status == "divergence"
        assert combo.stage == "rtl"
        assert combo.diff["expected"] != combo.diff["actual"]
