"""Tests for lifetime analysis and all allocator families."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import (
    CliqueAllocator,
    ColoringRegisterAllocator,
    GreedyDatapathAllocator,
    LeftEdgeRegisterAllocator,
    allocate_buses,
    clique_partition,
    compute_lifetimes,
    estimate_interconnect,
    exact_minimum_clique_cover,
    fu_compatibility_graph,
    minimum_registers,
    ops_compatible,
)
from repro.errors import AllocationError
from repro.ir import OpKind
from repro.scheduling import (
    ASAPScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import (
    RandomDFGSpec,
    ewf_cdfg,
    fig6_cdfg,
    random_dfg,
    sqrt_cdfg,
)

UNIT = TypedFUModel(single_cycle=True)


def scheduled(cdfg, constraints=None, scheduler=ListScheduler, model=UNIT):
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], model, constraints
    )
    schedule = scheduler(problem).schedule()
    schedule.validate()
    return schedule


ALL_ALLOCATORS = [
    CliqueAllocator,
    LeftEdgeRegisterAllocator,
    ColoringRegisterAllocator,
    lambda s: GreedyDatapathAllocator(s, "local"),
    lambda s: GreedyDatapathAllocator(s, "global"),
    lambda s: GreedyDatapathAllocator(s, "blind"),
]


class TestLifetimes:
    def test_chained_value_needs_no_register(self):
        """A value consumed only in its defining step stays on wires."""
        from repro.transforms import optimize

        cdfg = sqrt_cdfg()
        optimize(cdfg)
        body = cdfg.loops()[0].test_block
        schedule = scheduled_block(body, ResourceConstraints({"fu": 2}))
        lifetimes = compute_lifetimes(schedule)
        shift = next(
            op for op in body.ops if op.kind is OpKind.SHR
        )
        add = shift.operands[0]
        assert add.id not in {lt.value.id for lt in lifetimes}

    def test_carrier_tagged(self):
        schedule = scheduled(fig6_cdfg(),
                             ResourceConstraints({"add": 2}))
        lifetimes = compute_lifetimes(schedule)
        carriers = {lt.carrier for lt in lifetimes if lt.carrier}
        assert "x" in carriers

    def test_conflict_is_symmetric(self):
        schedule = scheduled(fig6_cdfg(),
                             ResourceConstraints({"add": 2}))
        lifetimes = compute_lifetimes(schedule)
        for a in lifetimes:
            for b in lifetimes:
                assert a.conflicts_with(b) == b.conflicts_with(a)

    def test_back_to_back_reuse_allowed(self):
        """A value dying in step t and one born at the end of step t
        may share a register."""
        from repro.allocation.lifetimes import ValueLifetime

        class _V:  # minimal stand-in with an id
            def __init__(self, i):
                self.id = i

            def __repr__(self):
                return f"v{self.id}"

        a = ValueLifetime(_V(1), -1, 1)
        b = ValueLifetime(_V(2), 1, 3)
        assert not a.conflicts_with(b)

    def test_min_registers_bound(self):
        schedule = scheduled(ewf_cdfg(),
                             ResourceConstraints({"add": 2, "mul": 1}))
        lifetimes = compute_lifetimes(schedule)
        assert minimum_registers(lifetimes) >= 1


def scheduled_block(block, constraints):
    from repro.scheduling import UniversalFUModel

    problem = SchedulingProblem.from_block(
        block, UniversalFUModel(), constraints
    )
    schedule = ListScheduler(problem).schedule()
    schedule.validate()
    return schedule


class TestCliquePartition:
    def test_partition_covers_all_nodes(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        graph.add_edges_from([(0, 1), (1, 2), (0, 2), (3, 4)])
        cliques = clique_partition(graph)
        covered = set()
        for clique in cliques:
            covered |= clique
        assert covered == set(range(5))

    def test_partition_members_pairwise_adjacent(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(6))
        graph.add_edges_from(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
        )
        for clique in clique_partition(graph):
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert graph.has_edge(u, v)

    def test_triangle_one_clique(self):
        graph = nx.complete_graph(3)
        assert clique_partition(graph) == [{0, 1, 2}]

    def test_empty_graph(self):
        assert clique_partition(nx.Graph()) == []

    def test_exact_cover_optimal_on_small_graphs(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edges_from([(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        exact = exact_minimum_clique_cover(graph)
        greedy = clique_partition(graph)
        assert len(exact) == 2
        assert len(greedy) == len(exact)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 15 - 1))
    def test_greedy_never_beats_exact(self, edge_bits):
        """Greedy clique partitioning is valid and uses at least as
        many cliques as the optimum on every 6-node graph."""
        nodes = list(range(6))
        graph = nx.Graph()
        graph.add_nodes_from(nodes)
        bit = 0
        for i in nodes:
            for j in nodes[i + 1:]:
                if edge_bits >> bit & 1:
                    graph.add_edge(i, j)
                bit += 1
        greedy = clique_partition(graph)
        exact = exact_minimum_clique_cover(graph)
        for clique in greedy:
            members = sorted(clique)
            for x, u in enumerate(members):
                for v in members[x + 1:]:
                    assert graph.has_edge(u, v)
        assert len(greedy) >= len(exact)


class TestFig7:
    def test_three_op_clique(self):
        """Fig. 7: three of the four additions share one adder."""
        cdfg = fig6_cdfg()
        schedule = scheduled(cdfg, ResourceConstraints({"add": 2}),
                             scheduler=ASAPScheduler)
        graph = fu_compatibility_graph(schedule)
        cliques = clique_partition(graph)
        sizes = sorted(len(c) for c in cliques)
        assert sizes == [1, 3]

    def test_compatibility_same_step_excluded(self):
        cdfg = fig6_cdfg()
        schedule = scheduled(cdfg, ResourceConstraints({"add": 2}),
                             scheduler=ASAPScheduler)
        adds = [op.id for op in schedule.problem.ops
                if op.kind is OpKind.ADD]
        a1, a2 = adds[0], adds[1]
        assert schedule.start[a1] == schedule.start[a2]
        assert not ops_compatible(schedule, a1, a2)


class TestAllocators:
    @pytest.mark.parametrize("factory", ALL_ALLOCATORS)
    def test_valid_on_ewf(self, factory):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocation = factory(schedule).allocate()
        allocation.validate()

    def test_left_edge_register_count_optimal(self):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocation = LeftEdgeRegisterAllocator(schedule).allocate()
        allocation.validate()
        lifetimes = compute_lifetimes(schedule)
        assert allocation.register_count == minimum_registers(lifetimes)

    def test_coloring_matches_left_edge_count(self):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        left_edge = LeftEdgeRegisterAllocator(schedule).allocate()
        coloring = ColoringRegisterAllocator(schedule).allocate()
        coloring.validate()
        assert coloring.register_count == left_edge.register_count

    def test_fu_count_respects_schedule_usage(self):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        for factory in ALL_ALLOCATORS:
            allocation = factory(schedule).allocate()
            usage = schedule.resource_usage()
            assert allocation.fu_count("add") >= usage["add"]
            # No allocator should need more than one unit per op slot.
            assert allocation.fu_count("add") <= len(
                [o for o in schedule.problem.ops
                 if o.kind is OpKind.ADD]
            )

    def test_clique_fu_count_matches_peak_usage(self):
        """On interval compatibility structures the greedy clique cover
        achieves the peak-usage bound."""
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocation = CliqueAllocator(schedule).allocate()
        usage = schedule.resource_usage()
        assert allocation.fu_count("add") == usage["add"]
        assert allocation.fu_count("mul") == usage["mul"]

    def test_checker_rejects_fu_overlap(self):
        from repro.allocation import Allocation, FUInstance

        schedule = scheduled(fig6_cdfg(),
                             ResourceConstraints({"add": 2}),
                             scheduler=ASAPScheduler)
        allocation = LeftEdgeRegisterAllocator(schedule).allocate()
        # Force the two step-0 adds onto one adder.
        adds = [op.id for op in schedule.problem.ops
                if op.kind is OpKind.ADD]
        broken = Allocation(
            schedule,
            fu_map=dict(allocation.fu_map),
            register_map=dict(allocation.register_map),
            allocator="broken",
        )
        broken.fu_map[adds[0]] = FUInstance("add", 0)
        broken.fu_map[adds[1]] = FUInstance("add", 0)
        with pytest.raises(AllocationError):
            broken.validate()

    def test_checker_rejects_register_conflict(self):
        from repro.allocation import Allocation

        schedule = scheduled(fig6_cdfg(),
                             ResourceConstraints({"add": 2}),
                             scheduler=ASAPScheduler)
        good = LeftEdgeRegisterAllocator(schedule).allocate()
        lifetimes = compute_lifetimes(schedule)
        conflicting = None
        for a in lifetimes:
            for b in lifetimes:
                if a.value.id < b.value.id and a.conflicts_with(b):
                    conflicting = (a.value.id, b.value.id)
                    break
            if conflicting:
                break
        assert conflicting is not None
        broken = Allocation(
            schedule,
            fu_map=dict(good.fu_map),
            register_map=dict(good.register_map),
            allocator="broken",
        )
        broken.register_map[conflicting[0]] = 0
        broken.register_map[conflicting[1]] = 0
        with pytest.raises(AllocationError):
            broken.validate()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(1, 10_000), ops=st.integers(5, 25))
    def test_all_allocators_valid_on_random_dfgs(self, seed, ops):
        cdfg = random_dfg(RandomDFGSpec(ops=ops, seed=seed))
        schedule = scheduled(
            cdfg, ResourceConstraints({"add": 2, "mul": 2})
        )
        for factory in ALL_ALLOCATORS:
            factory(schedule).allocate().validate()


class TestFig6Greedy:
    def setup_method(self):
        # The list schedule ({a3,a1}, {a2,a4}) exhibits the paper's
        # interconnect-cost divergence; see benchmarks/test_fig6 for
        # the step-by-step account.
        cdfg = fig6_cdfg()
        self.schedule = scheduled(
            cdfg, ResourceConstraints({"add": 2}),
            scheduler=ListScheduler,
        )

    def test_two_adders_all_policies(self):
        for selection in ("local", "global", "blind"):
            allocation = GreedyDatapathAllocator(
                self.schedule, selection
            ).allocate()
            allocation.validate()
            assert allocation.fu_count("add") == 2

    def test_aware_beats_blind_on_mux_cost(self):
        """Fig. 6: ignoring interconnection costs makes 'the final
        multiplexing … more expensive'."""
        aware = GreedyDatapathAllocator(self.schedule, "local").allocate()
        blind = GreedyDatapathAllocator(self.schedule, "blind").allocate()
        aware_cost = estimate_interconnect(aware).mux_inputs
        blind_cost = estimate_interconnect(blind).mux_inputs
        assert aware_cost < blind_cost

    def test_global_no_worse_than_local(self):
        local = GreedyDatapathAllocator(self.schedule, "local").allocate()
        global_ = GreedyDatapathAllocator(self.schedule,
                                          "global").allocate()
        assert (
            estimate_interconnect(global_).mux_inputs
            <= estimate_interconnect(local).mux_inputs
        )


class TestInterconnect:
    def test_mux_accounting(self):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocation = CliqueAllocator(schedule).allocate()
        estimate = estimate_interconnect(allocation)
        assert estimate.mux_inputs >= estimate.mux_count * 2
        assert estimate.transfers

    def test_single_source_ports_need_no_mux(self):
        schedule = scheduled(fig6_cdfg(),
                             ResourceConstraints({"add": 4}))
        allocation = GreedyDatapathAllocator(schedule, "local").allocate()
        estimate = estimate_interconnect(allocation)
        for sources in estimate.port_sources.values():
            if len(sources) == 1:
                pass  # implicitly not counted
        single = sum(
            1 for s in estimate.port_sources.values() if len(s) == 1
        )
        assert estimate.mux_count == len(estimate.port_sources) - single

    def test_bus_allocation(self):
        schedule = scheduled(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        allocation = CliqueAllocator(schedule).allocate()
        estimate = estimate_interconnect(allocation)
        buses = allocate_buses(estimate)
        assert buses.bus_count >= 1
        # Two different sources in the same step are on different buses.
        seen = {}
        for (step, source), bus in buses.bus_of.items():
            key = (step, bus)
            assert key not in seen or seen[key] == source
            seen[key] = source
