"""Directive-space DSE funnel, the QoR estimator, and the
measurement-contract bugfix sweep.

Covers the tentpole (:func:`repro.explore.explore_directives` and
:mod:`repro.estimation.qor`) and pins the three satellite bugfixes:
the assume contract forwarded into sweep measurement vectors, range
narrowing hoisted out of the per-point loop, and zero-trip pre-test
loops unrolling to an empty sequence.
"""

import pytest

from repro.core import clear_synthesis_cache, synthesize
from repro.core.engine import SynthesisOptions
from repro.estimation import QoRModel
from repro.explore import (
    DirectiveConfig,
    DirectivePoint,
    default_directive_space,
    explore_directives,
    explore_fu_range,
)
from repro.explore.dse import _PointBuilder, measure_cycles
from repro.errors import HLSError
from repro.lang import compile_source
from repro.obs import ledger as run_ledger
from repro.obs import metrics
from repro.obs.regression import compare
from repro.scheduling import ResourceConstraints
from repro.sim.equivalence import check_behavioral_equivalence
from repro.transforms import LoopUnrolling, clone_cdfg, optimize
from repro.verify import run_differential
from repro.workloads import (
    DIFFEQ_SOURCE,
    SQRT_SOURCE,
    diffeq_inputs,
    fir_source,
)

#: In-contract vectors that actually run diffeq's integration loop —
#: the default corner vectors all start at ``x0 == a``, so the loop
#: body never executes and every directive looks latency-identical.
DIFFEQ_VECTORS = [diffeq_inputs(steps) for steps in (2, 4, 8)]


def rows(points):
    return [
        (str(p.constraints), p.area, p.cycles, p.clock_ns)
        for p in points
    ]


# ----------------------------------------------------------------------
# QoR estimator.


class TestQoREstimator:
    @pytest.mark.parametrize("name,source", [
        ("sqrt", SQRT_SOURCE),
        ("diffeq", DIFFEQ_SOURCE),
        ("fir4", fir_source(4)),
    ])
    @pytest.mark.parametrize("tree_height", [False, True])
    @pytest.mark.parametrize("limit", [1, 2, None])
    def test_lower_bound_is_admissible(self, name, source,
                                       tree_height, limit):
        """``latency_lb_csteps`` never exceeds the measured cycles of
        the synthesized design — the bound is sound."""
        constraints = (
            ResourceConstraints({"fu": limit}) if limit else None
        )
        options = SynthesisOptions(tree_height=tree_height,
                                   constraints=constraints)
        cdfg = compile_source(source)
        optimize(cdfg, tree_height=tree_height)
        estimate = QoRModel(cdfg).estimate(constraints)

        design = synthesize(source, options=options)
        vectors = DIFFEQ_VECTORS if name == "diffeq" else None
        cycles = measure_cycles(design, vectors)
        assert estimate.latency_lb_csteps <= cycles
        assert estimate.latency_csteps >= estimate.latency_lb_csteps
        assert estimate.area > 0
        assert estimate.clock_ns > 0

    def test_resource_bound_tightens_with_limit(self):
        cdfg = compile_source(DIFFEQ_SOURCE)
        optimize(cdfg)
        model = QoRModel(cdfg)
        tight = model.estimate(ResourceConstraints({"fu": 1}))
        loose = model.estimate(ResourceConstraints({"fu": 4}))
        assert tight.latency_lb_csteps >= loose.latency_lb_csteps
        assert tight.latency_csteps > loose.latency_csteps
        assert tight.area < loose.area

    def test_equal_estimates_never_dominate(self):
        cdfg = compile_source(SQRT_SOURCE)
        optimize(cdfg)
        estimate = QoRModel(cdfg).estimate(None)
        assert not estimate.dominates(estimate)
        assert not estimate.dominates(estimate, margin=0.5)


# ----------------------------------------------------------------------
# The funnel.


class TestDirectiveFunnel:
    def test_prunes_and_expands_front(self):
        limits = [1, 2, 3]
        configs = default_directive_space()
        baseline = explore_fu_range(DIFFEQ_SOURCE, limits,
                                    vectors=DIFFEQ_VECTORS,
                                    use_cache=False)
        clear_synthesis_cache()
        result = explore_directives(DIFFEQ_SOURCE, limits,
                                    configs=configs,
                                    vectors=DIFFEQ_VECTORS,
                                    use_cache=False)

        funnel = result.funnel
        assert funnel["exhaustive"] == len(configs) * len(limits)
        # The acceptance ratio: at least 2x fewer full evaluations
        # than the exhaustive cross-product.
        assert funnel["configs_evaluated"] * 2 <= funnel["exhaustive"]
        assert funnel["configs_pruned"] > 0
        # diffeq has no constant-trip loops and no ifs, so unroll and
        # if-conversion are no-ops — exact dedup must catch them.
        assert funnel["duplicates_pruned"] > 0
        assert (funnel["configs_evaluated"] + funnel["configs_pruned"]
                == funnel["exhaustive"])

        # Front expansion: at least one directive point no FU-only
        # point dominates.
        base_front = [(p.area, p.latency_ns) for p in baseline.pareto]
        new = [
            p for p in result.pareto
            if not any(a <= p.area and l <= p.latency_ns
                       for a, l in base_front)
        ]
        assert new, "directive sweep expanded no Pareto point"
        assert all(isinstance(p, DirectivePoint) for p in result.points)
        assert "funnel:" in result.table()

    def test_plain_cells_match_fu_sweep(self):
        """Wherever the funnel kept the no-directive/list/left-edge
        configuration, its measurements equal the plain FU sweep's."""
        limits = [1, 2]
        baseline = explore_fu_range(DIFFEQ_SOURCE, limits,
                                    vectors=DIFFEQ_VECTORS,
                                    use_cache=False)
        clear_synthesis_cache()
        result = explore_directives(DIFFEQ_SOURCE, limits,
                                    vectors=DIFFEQ_VECTORS,
                                    use_cache=False)
        plain = {
            str(p.constraints): (p.area, p.cycles, p.clock_ns)
            for p in result.points
            if p.config == DirectiveConfig()
        }
        assert plain, "the plain configuration was pruned entirely"
        for point in baseline.points:
            key = str(point.constraints)
            if key in plain:
                assert plain[key] == (point.area, point.cycles,
                                      point.clock_ns)

    def test_parallel_matches_serial(self):
        limits = [1, 2]
        serial = explore_directives(DIFFEQ_SOURCE, limits,
                                    vectors=DIFFEQ_VECTORS,
                                    use_cache=False)
        clear_synthesis_cache()
        jobbed = explore_directives(DIFFEQ_SOURCE, limits,
                                    vectors=DIFFEQ_VECTORS,
                                    n_jobs=2, use_cache=False)
        serial_rows = sorted(
            (p.config.label(), *row)
            for p, row in zip(serial.points, rows(serial.points))
        )
        jobbed_rows = sorted(
            (p.config.label(), *row)
            for p, row in zip(jobbed.points, rows(jobbed.points))
        )
        assert jobbed_rows == serial_rows

    def test_rejects_factories_and_unknown_schedulers(self):
        with pytest.raises(HLSError):
            explore_directives(lambda: compile_source(SQRT_SOURCE),
                               [1])
        with pytest.raises(HLSError):
            explore_directives(
                SQRT_SOURCE, [1],
                configs=[DirectiveConfig(scheduler="no-such")],
            )

    def test_metrics_and_ledger_record(self, tmp_path):
        before = metrics().snapshot()["counters"]
        ledger = run_ledger.configure_ledger(tmp_path / "ledger")
        try:
            result = explore_directives(DIFFEQ_SOURCE, [1, 2],
                                        vectors=DIFFEQ_VECTORS,
                                        use_cache=False)
        finally:
            run_ledger.reset_ledger()
        after = metrics().snapshot()["counters"]
        funnel = result.funnel
        assert (after.get("dse.configs.pruned", 0)
                - before.get("dse.configs.pruned", 0)
                == funnel["configs_pruned"])
        assert (after.get("dse.configs.evaluated", 0)
                - before.get("dse.configs.evaluated", 0)
                == funnel["configs_evaluated"])

        records = ledger.records()
        assert len(records) == 1
        record = records[0]
        assert record.kind == "explore-directives"
        assert record.extra["configs_pruned"] == funnel["configs_pruned"]
        assert (record.extra["configs_evaluated"]
                == funnel["configs_evaluated"])
        assert record.extra["exhaustive"] == funnel["exhaustive"]
        assert all("config" in p for p in record.extra["points"])

    def test_prune_margin_keeps_near_dominated_cells(self):
        strict = explore_directives(DIFFEQ_SOURCE, [1, 2, 3],
                                    vectors=DIFFEQ_VECTORS,
                                    use_cache=False)
        clear_synthesis_cache()
        lenient = explore_directives(DIFFEQ_SOURCE, [1, 2, 3],
                                     vectors=DIFFEQ_VECTORS,
                                     prune_margin=10.0,
                                     use_cache=False)
        assert (lenient.funnel["estimate_pruned"]
                <= strict.funnel["estimate_pruned"])
        assert (lenient.funnel["configs_evaluated"]
                >= strict.funnel["configs_evaluated"])


def test_directive_regression_families():
    """The ledger report warns when pruning degrades or full
    evaluations grow — never fails (the funnel is heuristic)."""
    older = run_ledger.build_record(
        "explore-directives", "diffeq",
        extra={"configs_pruned": 38, "configs_evaluated": 10},
    )
    newer = run_ledger.build_record(
        "explore-directives", "diffeq",
        extra={"configs_pruned": 20, "configs_evaluated": 20},
    )
    report = compare([older, newer])
    verdicts = {
        v.family: v.status
        for group in report.groups for v in group.verdicts
    }
    assert verdicts["dse_configs_pruned"] == "warn"
    assert verdicts["dse_configs_evaluated"] == "warn"
    assert report.exit_code == 1


def test_cli_explore_directives(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "diffeq.bsl"
    path.write_text(DIFFEQ_SOURCE)
    assert main([
        "explore", str(path), "--limits", "1,2", "--directives",
    ]) == 0
    out = capsys.readouterr().out
    assert "funnel:" in out
    assert "full evaluations" in out


# ----------------------------------------------------------------------
# Satellite bugfixes.


DIFFEQ_CONTRACT = (
    ("x0", 0.0, 1.0),
    ("y0", 0.0, 1.0),
    ("u0", 0.0, 1.0),
    ("dx", 0.0, 0.125),
    ("a", 0.0, 1.0),
)


class TestAssumeContractInSweeps:
    def test_builder_vectors_honor_contract(self):
        """Regression: ``_PointBuilder`` used to drop the assume
        contract when generating measurement vectors, so a narrowed
        sweep was measured on out-of-contract corner inputs."""
        options = SynthesisOptions(narrow=True,
                                   assume_ranges=DIFFEQ_CONTRACT)
        builder = _PointBuilder(DIFFEQ_SOURCE, "fu", options, None,
                                use_cache=False)
        builder.ensure_vectors()
        bounds = {name: (lo, hi) for name, lo, hi in DIFFEQ_CONTRACT}
        assert builder.vectors
        for vector in builder.vectors:
            for name, value in vector.items():
                lo, hi = bounds[name]
                assert lo <= value <= hi, (name, value)

    def test_ensure_vectors_keeps_explicit_vectors(self):
        builder = _PointBuilder(DIFFEQ_SOURCE, "fu",
                                SynthesisOptions(), DIFFEQ_VECTORS,
                                use_cache=False)
        builder.ensure_vectors()
        assert builder.vectors is DIFFEQ_VECTORS


class TestNarrowedSweepParity:
    def test_serial_parallel_and_per_point_agree(self):
        """Regression: narrowing used to re-run per point on the
        shared working CDFG; every path must now match a per-point
        full synthesis."""
        options = SynthesisOptions(narrow=True,
                                   assume_ranges=DIFFEQ_CONTRACT)
        limits = [1, 2]
        vectors = [diffeq_inputs(2), diffeq_inputs(4)]
        serial = explore_fu_range(DIFFEQ_SOURCE, limits,
                                  options=options, vectors=vectors,
                                  use_cache=False)
        clear_synthesis_cache()
        jobbed = explore_fu_range(DIFFEQ_SOURCE, limits,
                                  options=options, vectors=vectors,
                                  n_jobs=2, use_cache=False)
        assert rows(jobbed.points) == rows(serial.points)

        from repro.estimation import estimate_area, estimate_timing

        expected = []
        for limit in limits:
            clear_synthesis_cache()
            point_options = options.with_constraints({"fu": limit})
            design = synthesize(DIFFEQ_SOURCE, options=point_options,
                                use_cache=False)
            cycles = measure_cycles(design, vectors)
            expected.append((
                str(point_options.constraints),
                estimate_area(design).total,
                cycles,
                estimate_timing(design, cycles).clock_ns,
            ))
        assert rows(serial.points) == expected


ZERO_TRIP_SOURCE = """
procedure zerotrip(input x: fixed<32,16>; output y: fixed<32,16>);
var acc: fixed<32,16>;
    i: uint<8>;
begin
  acc := x + 1.0;
  for i := 5 to 4 do
  begin
    acc := acc + 100.0;
  end;
  y := acc * 2.0;
end
"""


class TestZeroTripUnroll:
    def test_zero_trip_pre_test_loop_removed(self):
        """Regression: a provably-zero-trip loop used to survive
        unrolling as a full loop region."""
        cdfg = compile_source(ZERO_TRIP_SOURCE)
        before = clone_cdfg(cdfg)
        assert LoopUnrolling().run(cdfg)

        from repro.ir.cdfg import LoopRegion

        def loops(region):
            found = []
            stack = [region]
            while stack:
                node = stack.pop()
                if isinstance(node, LoopRegion):
                    found.append(node)
                for attr in ("items", "body", "then_region",
                             "else_region"):
                    child = getattr(node, attr, None)
                    if child is None:
                        continue
                    stack.extend(child if isinstance(child, list)
                                 else [child])
            return found

        assert not loops(cdfg.body)
        check_behavioral_equivalence(before, cdfg)

    def test_zero_trip_synthesis_matches_behavior(self):
        design = synthesize(
            ZERO_TRIP_SOURCE,
            options=SynthesisOptions(unroll=True),
        )
        from repro.sim.rtl_sim import RTLSimulator

        outputs = RTLSimulator(design).run({"x": 0.5})
        assert outputs["y"] == pytest.approx(3.0)


@pytest.mark.parametrize("source", [SQRT_SOURCE, DIFFEQ_SOURCE],
                         ids=["sqrt", "diffeq"])
@pytest.mark.parametrize("config", [
    DirectiveConfig(),
    DirectiveConfig(unroll=True),
    DirectiveConfig(tree_height=True,
                    scheduler="force-directed"),
    DirectiveConfig(if_conversion=True, scheduler="force-directed"),
    DirectiveConfig(tree_height=True, if_conversion=True),
], ids=lambda c: c.label() if isinstance(c, DirectiveConfig) else c)
def test_directive_grid_differentially_clean(source, config):
    """Every sampled directive configuration synthesizes designs that
    agree with the behavioral reference."""
    options = config.apply(SynthesisOptions(
        constraints=ResourceConstraints({"fu": 2})
    ))
    report = run_differential(
        source,
        schedulers=[config.scheduler],
        allocators=[config.allocator],
        options=options,
    )
    assert report.ok, report.render()


def test_unroll_dead_counter_needs_no_register():
    """Regression: the register-missing lint must use the same
    liveness-informed lifetime model as the allocator.

    Unrolling sqrt leaves ``I := I + 1`` bookkeeping in the loop-body
    copies; the counter is dead after full unrolling, so the allocator
    (correctly) gives the incremented value no register.  The lint used
    to compute lifetimes without live-out information, extend the value
    to end-of-block, and report a phantom ``register-missing``
    violation — failing differential verification at the seed for any
    unrolled sqrt configuration."""
    options = DirectiveConfig(unroll=True, tree_height=True).apply(
        SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))
    )
    report = run_differential(SQRT_SOURCE, schedulers=["list"],
                              allocators=["left-edge"],
                              options=options)
    assert report.ok, report.render()
