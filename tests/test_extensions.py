"""Tests for the §4 extension features: if-conversion, behavioral
transform verification, and designer timing constraints."""

import pytest

from repro.core import SynthesisOptions, synthesize_cdfg
from repro.errors import EquivalenceError, SchedulingError
from repro.ir import OpKind
from repro.lang import compile_source
from repro.scheduling import (
    ASAPScheduler,
    BranchAndBoundScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TimingConstraint,
    TypedFUModel,
)
from repro.sim import check_behavioral_equivalence, check_equivalence, run_behavior
from repro.transforms import IfConversion
from repro.workloads import fig3_cdfg

CLIP = """
procedure clip(input v: int<16>; input lo: int<16>; input hi: int<16>;
               output o: int<16>);
begin
  o := v;
  if o < lo then o := lo;
  if o > hi then o := hi;
end
"""

ABSDIFF = """
procedure absdiff(input a: int<16>; input b: int<16>; output d: int<16>);
begin
  if a > b then
    d := a - b;
  else
    d := b - a;
end
"""


class TestIfConversion:
    def test_clip_converts_to_straight_line(self):
        cdfg = compile_source(CLIP)
        before = {
            v: run_behavior(cdfg, dict(v=v, lo=0, hi=100))["o"]
            for v in (-5, 50, 500)
        }
        assert IfConversion().run(cdfg)
        cdfg.validate()
        # No branches remain; MUXes appear.
        from repro.ir import IfRegion

        assert not any(
            isinstance(r, IfRegion) for r in cdfg.body.walk()
        )
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.MUX) == 2
        for v, expected in before.items():
            assert run_behavior(cdfg, dict(v=v, lo=0, hi=100))["o"] == \
                expected

    def test_if_else_both_arms(self):
        cdfg = compile_source(ABSDIFF)
        assert IfConversion().run(cdfg)
        cdfg.validate()
        for a, b in ((3, 9), (9, 3), (5, 5)):
            assert run_behavior(cdfg, {"a": a, "b": b})["d"] == abs(a - b)

    def test_converted_design_synthesizes(self):
        cdfg = compile_source(ABSDIFF)
        IfConversion().run(cdfg)
        design = synthesize_cdfg(
            cdfg,
            SynthesisOptions(constraints=ResourceConstraints({"fu": 2})),
        )
        report = check_equivalence(
            design, vectors=[{"a": 3, "b": 9}, {"a": 9, "b": 3}]
        )
        assert report.equivalent

    def test_control_data_tradeoff(self):
        """If-conversion trades controller states for datapath work:
        fewer FSM states, same behavior."""
        branching = synthesize_cdfg(
            compile_source(ABSDIFF),
            SynthesisOptions(constraints=ResourceConstraints({"fu": 2})),
        )
        converted_cdfg = compile_source(ABSDIFF)
        IfConversion().run(converted_cdfg)
        converted = synthesize_cdfg(
            converted_cdfg,
            SynthesisOptions(constraints=ResourceConstraints({"fu": 2})),
        )
        assert converted.state_count < branching.state_count

    def test_memory_arms_not_converted(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var m: int<8>[4];
begin
  if a > 0 then m[0] := a;
  b := m[0];
end
""")
        assert not IfConversion().run(cdfg)

    def test_large_arms_not_converted(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a > 0 then
    b := ((a * a) * (a + 1)) * ((a - 1) * (a + 2)) * a;
  else
    b := 0;
end
""")
        assert not IfConversion(max_ops=3).run(cdfg)

    def test_nested_if_inner_converted(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  if a > 0 then
  begin
    b := 1;
    if a > 10 then b := 2;
  end;
end
""")
        expected = {a: run_behavior(cdfg, {"a": a})["b"]
                    for a in (-1, 5, 20)}
        IfConversion().run(cdfg)
        cdfg.validate()
        for a, value in expected.items():
            assert run_behavior(cdfg, {"a": a})["b"] == value


class TestBehavioralEquivalence:
    def test_transform_verified(self):
        from repro.transforms import optimize
        from repro.workloads import sqrt_cdfg

        before = sqrt_cdfg()
        after = sqrt_cdfg()
        optimize(after, unroll=True)
        report = check_behavioral_equivalence(before, after)
        assert report.equivalent

    def test_detects_wrong_transform(self):
        before = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + 1;
end
""")
        wrong = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + 2;
end
""")
        with pytest.raises(EquivalenceError):
            check_behavioral_equivalence(before, wrong)

    def test_port_mismatch_rejected(self):
        a = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a;
end
""")
        c = compile_source("""
procedure p(input x: int<8>; output b: int<8>);
begin
  b := x;
end
""")
        with pytest.raises(EquivalenceError):
            check_behavioral_equivalence(a, c)


def fig3_problem(timing=None, constraints=None):
    cdfg = fig3_cdfg()
    return SchedulingProblem.from_block(
        cdfg.blocks()[0], TypedFUModel(single_cycle=True),
        constraints,
    ) if timing is None else SchedulingProblem(
        list(cdfg.blocks()[0].ops),
        TypedFUModel(single_cycle=True),
        constraints,
        timing_constraints=timing,
    )


class TestTimingConstraints:
    def test_invalid_constraint_rejected(self):
        with pytest.raises(SchedulingError):
            TimingConstraint(1, 2)
        with pytest.raises(SchedulingError):
            TimingConstraint(1, 2, min_offset=3, max_offset=1)

    def test_min_offset_honoured_by_asap(self):
        base = fig3_problem()
        muls = [op.id for op in base.ops if op.kind is OpKind.MUL]
        problem = fig3_problem(
            timing=[TimingConstraint(muls[0], muls[1], min_offset=3)]
        )
        schedule = ASAPScheduler(problem).schedule()
        schedule.validate()
        assert (
            schedule.start[muls[1]] - schedule.start[muls[0]] >= 3
        )

    def test_min_offset_honoured_by_list(self):
        base = fig3_problem()
        muls = [op.id for op in base.ops if op.kind is OpKind.MUL]
        problem = fig3_problem(
            timing=[TimingConstraint(muls[0], muls[1], min_offset=2)],
            constraints=ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = ListScheduler(problem).schedule()
        schedule.validate()

    def test_max_offset_checked(self):
        base = fig3_problem()
        muls = [op.id for op in base.ops if op.kind is OpKind.MUL]
        problem = fig3_problem(
            timing=[TimingConstraint(muls[0], muls[1], max_offset=0)],
            constraints=ResourceConstraints({"mul": 1}),
        )
        # Both multiplies in the same step needs 2 multipliers; with
        # one, every schedule violates the window.
        schedule = ASAPScheduler(problem).schedule()
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_bnb_satisfies_window(self):
        base = fig3_problem()
        muls = [op.id for op in base.ops if op.kind is OpKind.MUL]
        problem = fig3_problem(
            timing=[TimingConstraint(muls[0], muls[1], min_offset=1,
                                     max_offset=1)],
            constraints=ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = BranchAndBoundScheduler(problem).schedule()
        schedule.validate()
        assert (
            schedule.start[muls[1]] - schedule.start[muls[0]] == 1
        )

    def test_negative_distance_window_satisfied_by_reordering(self):
        """max_offset=0 alone allows to_op at or *before* from_op."""
        base = fig3_problem()
        muls = [op.id for op in base.ops if op.kind is OpKind.MUL]
        problem = fig3_problem(
            timing=[TimingConstraint(muls[0], muls[1], max_offset=0)],
            constraints=ResourceConstraints({"mul": 1}),
        )
        schedule = BranchAndBoundScheduler(problem).schedule()
        schedule.validate()
        assert schedule.start[muls[1]] <= schedule.start[muls[0]]

    def test_bnb_detects_infeasible_window(self):
        """Forcing both multiplies into the same step with a single
        multiplier is unsatisfiable."""
        base = fig3_problem()
        muls = [op.id for op in base.ops if op.kind is OpKind.MUL]
        problem = fig3_problem(
            timing=[TimingConstraint(muls[0], muls[1], min_offset=0,
                                     max_offset=0)],
            constraints=ResourceConstraints({"mul": 1}),
        )
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(problem).schedule()

    def test_cycle_creating_constraint_rejected(self):
        base = fig3_problem()
        adds = [op.id for op in base.ops if op.kind is OpKind.ADD]
        # adds[1] depends on adds[0]; a min-offset back edge is a cycle.
        with pytest.raises(SchedulingError):
            fig3_problem(
                timing=[TimingConstraint(adds[1], adds[0], min_offset=1)]
            )

    def test_unknown_op_rejected(self):
        with pytest.raises(SchedulingError):
            fig3_problem(
                timing=[TimingConstraint(99999, 1, min_offset=1)]
            )
