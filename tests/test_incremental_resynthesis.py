"""Incremental re-synthesis: CDFG diffing, schedule replay, parity.

The contract under test: ``resynthesize(baseline, edited_source)``
must produce a design **indistinguishable** from a full from-scratch
synthesis of the edited source (the differential verifier is the
arbiter), while actually replaying the baseline's schedules for every
content-unchanged block.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    block_digest,
    cdfg_digests,
    diff_cdfgs,
    structure_digest,
)
from repro.core import (
    SynthesisOptions,
    resynthesize,
    resynthesize_from_cache,
    synthesize,
)
from repro.lang import compile_source
from repro.obs import metrics
from repro.scheduling import ResourceConstraints
from repro.store import configure_store
from repro.transforms import optimize

#: A multi-block program: straight-line preamble, data-dependent
#: loop, epilogue.  ``{c}`` is the constant the "edit" changes.
PIPE_SOURCE = """
procedure pipe(input x: fixed<32,16>; input a: fixed<32,16>;
               output y: fixed<32,16>);
var t1, t2, t3, p: fixed<32,16>;
begin
  t1 := x * x + 3.0 * x;
  t2 := t1 * x - 2.0 * t1;
  t3 := t2 * t1 + x * t2;
  p := t3 + t2 * t3;
  while p < a do
  begin
    p := p + t1 * 0.125;
  end;
  y := p + {c};
end
"""

BASE = PIPE_SOURCE.format(c="0.5")
EDITED = PIPE_SOURCE.format(c="0.25")

OPTIONS = SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))


def _compiled(source: str, options: SynthesisOptions = OPTIONS):
    cdfg = compile_source(source)
    if options.optimize_ir:
        optimize(cdfg, unroll=options.unroll,
                 tree_height=options.tree_height)
    return cdfg


# ----------------------------------------------------------------------
# Digests and diffing.

def test_block_digests_stable_across_recompiles():
    first = cdfg_digests(_compiled(BASE))
    second = cdfg_digests(_compiled(BASE))
    assert first == second
    assert structure_digest(_compiled(BASE)) \
        == structure_digest(_compiled(BASE))


def test_block_digest_is_position_based_not_id_based():
    cdfg = _compiled(BASE)
    blocks = [b for b in cdfg.blocks() if b.ops]
    positions = None  # computed internally
    # Recompiling gives globally different op/value ids but identical
    # per-block digests.
    other = _compiled(BASE)
    other_blocks = {b.name: b for b in other.blocks()}
    for block in blocks:
        assert block_digest(block, positions) \
            == block_digest(other_blocks[block.name])


def test_diff_detects_single_dirty_block():
    delta = diff_cdfgs(_compiled(BASE), _compiled(EDITED))
    assert delta.is_block_local
    assert len(delta.dirty) == 1
    assert len(delta.unchanged) >= 3
    assert not delta.added and not delta.removed
    # The edited epilogue only writes the output port, so the impact
    # closure is the dirty block itself.
    assert delta.impacted == delta.dirty


def test_diff_flags_structural_edits():
    added_loop = BASE.replace(
        "y := p + 0.5;",
        "while p < t1 do\n  begin\n    p := p + 1.0;\n  end;\n"
        "  y := p + 0.5;",
    )
    delta = diff_cdfgs(_compiled(BASE), _compiled(added_loop))
    assert delta.structure_changed
    assert not delta.is_block_local


def test_identical_sources_diff_clean():
    delta = diff_cdfgs(_compiled(BASE), _compiled(BASE))
    assert not delta.dirty and not delta.added and not delta.removed
    assert not delta.structure_changed
    assert delta.impacted == []


# ----------------------------------------------------------------------
# Replay and parity.

def test_resynthesize_replays_unchanged_blocks():
    baseline = synthesize(BASE, options=OPTIONS)
    report = resynthesize(baseline, EDITED, options=OPTIONS)
    assert len(report.replayed_blocks) == len(report.delta.unchanged)
    assert len(report.scheduled_blocks) >= 1
    assert metrics().counter("engine.blocks.replayed").value \
        == len(report.replayed_blocks)
    assert set(report.scheduled_blocks) >= set(report.delta.dirty)


def test_resynthesize_matches_full_synthesis():
    baseline = synthesize(BASE, options=OPTIONS)
    report = resynthesize(baseline, EDITED, options=OPTIONS,
                          verify=True)
    assert report.verified is True
    full = synthesize(EDITED, options=OPTIONS)
    assert report.design.stage_signatures() == full.stage_signatures()


@pytest.mark.parametrize("scheduler", ["list", "force-directed"])
def test_parity_across_schedulers(scheduler):
    options = SynthesisOptions(
        scheduler=scheduler,
        constraints=ResourceConstraints({"fu": 2}),
    )
    baseline = synthesize(BASE, options=options)
    report = resynthesize(baseline, EDITED, options=options,
                          verify=True)
    assert report.verified is True
    assert report.replayed_blocks  # reuse actually happened


def test_structural_edit_still_correct():
    """A structure-changing edit gets little or no replay, but the
    result must still be verifiably equivalent to full synthesis."""
    edited = BASE.replace(
        "y := p + 0.5;",
        "while p < t1 do\n  begin\n    p := p + 1.0;\n  end;\n"
        "  y := p + 0.5;",
    )
    baseline = synthesize(BASE, options=OPTIONS)
    report = resynthesize(baseline, edited, options=OPTIONS,
                          verify=True)
    assert report.verified is True
    assert report.delta.structure_changed


def test_mismatched_baseline_options_fall_back_cleanly():
    """Hints from a baseline built under different constraints fail
    validation per block and everything is scheduled fresh — never an
    error, never a wrong design."""
    loose = synthesize(BASE, options=SynthesisOptions())  # unlimited
    report = resynthesize(loose, EDITED, options=OPTIONS, verify=True)
    assert report.verified is True


def test_resynthesize_from_cache_uses_the_store(tmp_path):
    store = configure_store(tmp_path / "designs")
    report = resynthesize_from_cache(BASE, EDITED, options=OPTIONS,
                                     verify=True)
    assert report.verified is True
    # Baseline and (verified) incremental result are both persisted.
    assert store.stats()["entries"] == 2

    # A fresh "process" (cleared LRU) finds the baseline on disk.
    from repro.core import clear_synthesis_cache
    clear_synthesis_cache()
    hits_before = metrics().counter("store.hits").value
    second = resynthesize_from_cache(BASE, EDITED, options=OPTIONS)
    assert metrics().counter("store.hits").value > hits_before
    assert second.design.stage_signatures() \
        == report.design.stage_signatures()


def test_unverified_incremental_result_is_not_persisted(tmp_path):
    store = configure_store(tmp_path / "designs")
    report = resynthesize_from_cache(BASE, EDITED, options=OPTIONS,
                                     verify=False)
    assert report.verified is None
    # Only the baseline was recorded: the store must never serve a
    # design that was not proven equivalent to full synthesis.
    assert store.stats()["entries"] == 1
