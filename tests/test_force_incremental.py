"""The incremental force-directed scheduler is a pure optimization.

``ForceDirectedScheduler`` keeps time frames and distribution graphs
up to date incrementally as operations are pinned; the textbook
full-recompute loop survives behind ``_reference=True`` as the oracle.
Both paths share the integer-scaled distribution arithmetic, so the
schedules must match *op for op* — not just in length or cost.
"""

import pytest

from repro.ir import OpKind
from repro.scheduling import (
    ForceDirectedScheduler,
    SchedulingProblem,
    TypedFUModel,
    set_problem_caching,
)
from repro.workloads import ewf_cdfg, fig5_cdfg
from repro.workloads.random_dfg import RandomDFGSpec, random_dfg


def _single_block_problem(cdfg, model, time_limit=None):
    block = next(b for b in cdfg.blocks() if b.ops)
    return SchedulingProblem.from_block(block, model,
                                        time_limit=time_limit)


def _both_schedules(problem_factory, deadline=None):
    reference = ForceDirectedScheduler(
        problem_factory(), deadline=deadline, _reference=True
    ).schedule()
    incremental = ForceDirectedScheduler(
        problem_factory(), deadline=deadline
    ).schedule()
    reference.validate()
    incremental.validate()
    return reference, incremental


def test_fig5_incremental_matches_reference():
    factory = lambda: _single_block_problem(  # noqa: E731
        fig5_cdfg(), TypedFUModel(single_cycle=True), time_limit=3
    )
    reference, incremental = _both_schedules(factory, deadline=3)
    assert incremental.start == reference.start
    # and both still reproduce the paper's Fig. 5 outcome
    problem = factory()
    a3 = [op.id for op in problem.ops if op.kind is OpKind.ADD][-1]
    assert incremental.start[a3] == 2
    assert incremental.resource_usage()["add"] == 1


def test_ewf_incremental_matches_reference():
    """Multicycle multiplies (delay 2) stretch occupancy rows across
    steps — the delta updates must account for the full span."""
    factory = lambda: _single_block_problem(  # noqa: E731
        ewf_cdfg(), TypedFUModel()
    )
    reference, incremental = _both_schedules(factory)
    assert incremental.start == reference.start


@pytest.mark.parametrize("seed", [7, 42, 99])
@pytest.mark.parametrize("ops", [30, 60])
def test_random_dfg_incremental_matches_reference(seed, ops):
    spec = RandomDFGSpec(ops=ops, seed=seed)
    factory = lambda: _single_block_problem(  # noqa: E731
        random_dfg(spec), TypedFUModel()
    )
    reference, incremental = _both_schedules(factory)
    assert incremental.start == reference.start


def test_incremental_matches_with_problem_caching_disabled():
    """The parity does not depend on the memoization layer."""
    spec = RandomDFGSpec(ops=40, seed=123)
    factory = lambda: _single_block_problem(  # noqa: E731
        random_dfg(spec), TypedFUModel()
    )
    previous = set_problem_caching(False)
    try:
        reference, incremental = _both_schedules(factory)
    finally:
        set_problem_caching(previous)
    assert incremental.start == reference.start


def test_relaxed_deadline_matches_reference():
    """Extra slack widens every frame; the paths must still agree."""
    factory = lambda: _single_block_problem(  # noqa: E731
        fig5_cdfg(), TypedFUModel(single_cycle=True)
    )
    reference, incremental = _both_schedules(factory, deadline=5)
    assert incremental.start == reference.start
