"""Tests for the high-level transformation passes (paper §2)."""

import pytest

from repro.ir import IntType, OpKind
from repro.lang import compile_source
from repro.sim import run_behavior
from repro.transforms import (
    CommonSubexpressionElimination,
    ConstantFolding,
    CounterNarrowing,
    DeadCodeElimination,
    LoopUnrolling,
    PassManager,
    StrengthReduction,
    TreeHeightReduction,
    TripCountAnalysis,
    optimize,
)
from repro.workloads import sqrt_cdfg


def kinds_of(cdfg):
    return [op.kind for op in cdfg.operations()]


class TestDCE:
    def test_removes_unused_expression(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var dead: int<8>;
begin
  dead := a * a + 3;
  b := a;
end
""")
        before = cdfg.count_ops()
        assert DeadCodeElimination().run(cdfg)
        cdfg.validate()
        assert cdfg.count_ops() < before
        assert OpKind.MUL not in kinds_of(cdfg)

    def test_keeps_live_writes(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  t := a + 1;
end

procedure q(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  t := a + 1;
  repeat
    t := t + 1;
  until t > 10;
  b := t;
end
""", procedure="q")
        DeadCodeElimination().run(cdfg)
        cdfg.validate()
        assert run_behavior(cdfg, {"a": 0})["b"] == 11

    def test_region_conditions_stay_live(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a > 0 then b := 1; else b := 2;
end
""")
        changed = DeadCodeElimination().run(cdfg)
        cdfg.validate()
        assert OpKind.GT in kinds_of(cdfg)
        assert run_behavior(cdfg, {"a": 1})["b"] == 1
        del changed

    def test_idempotent(self):
        cdfg = sqrt_cdfg()
        DeadCodeElimination().run(cdfg)
        assert not DeadCodeElimination().run(cdfg)


class TestConstantFolding:
    def test_folds_constant_tree(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + (2 + 3) * 4;
end
""")
        assert ConstantFolding().run(cdfg)
        DeadCodeElimination().run(cdfg)
        cdfg.validate()
        kinds = kinds_of(cdfg)
        assert kinds.count(OpKind.ADD) == 1   # only a + 20 remains
        assert OpKind.MUL not in kinds
        assert run_behavior(cdfg, {"a": 1})["b"] == 21

    def test_identity_add_zero(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + 0;
end
""")
        assert ConstantFolding().run(cdfg)
        DeadCodeElimination().run(cdfg)
        assert OpKind.ADD not in kinds_of(cdfg)
        assert run_behavior(cdfg, {"a": 7})["b"] == 7

    def test_identity_mul_one_and_zero(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>; output c: int<8>);
begin
  b := a * 1;
  c := a * 0;
end
""")
        ConstantFolding().run(cdfg)
        DeadCodeElimination().run(cdfg)
        assert OpKind.MUL not in kinds_of(cdfg)
        out = run_behavior(cdfg, {"a": 9})
        assert out == {"b": 9, "c": 0}

    def test_division_by_zero_not_folded(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + 4 / 0;
end
""")
        ConstantFolding().run(cdfg)
        assert OpKind.DIV in kinds_of(cdfg)

    def test_aborted_fold_is_counted(self):
        from repro import obs

        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + 4 / 0;
end
""")
        ConstantFolding().run(cdfg)
        counters = obs.metrics().counters()
        assert counters["transforms.constprop.fold_aborted"] == 1

    def test_unexpected_evaluate_exception_propagates(self, monkeypatch):
        """Only legitimate runtime events (SimulationError, overflow)
        abort a fold silently; a TypeError is a compiler bug."""
        import repro.transforms.constprop as constprop

        def broken(*args, **kwargs):
            raise TypeError("malformed attrs")

        monkeypatch.setattr(constprop, "evaluate", broken)
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + (2 + 3);
end
""")
        with pytest.raises(TypeError, match="malformed attrs"):
            ConstantFolding().run(cdfg)

    def test_folds_comparison_condition(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if 2 > 1 then b := 1; else b := 2;
end
""")
        assert ConstantFolding().run(cdfg)
        cdfg.validate()
        assert run_behavior(cdfg, {"a": 0})["b"] == 1


class TestCSE:
    def test_merges_duplicate_expression(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input c: int<8>; output b: int<8>);
begin
  b := (a + c) * (a + c);
end
""")
        assert CommonSubexpressionElimination().run(cdfg)
        cdfg.validate()
        assert kinds_of(cdfg).count(OpKind.ADD) == 1
        assert run_behavior(cdfg, {"a": 3, "c": 4})["b"] == 49

    def test_commutative_canonicalization(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input c: int<8>; output b: int<8>);
begin
  b := (a + c) + (c + a);
end
""")
        assert CommonSubexpressionElimination().run(cdfg)
        assert kinds_of(cdfg).count(OpKind.ADD) == 2  # one inner + outer

    def test_noncommutative_not_merged(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input c: int<8>; output b: int<8>);
begin
  b := (a - c) + (c - a);
end
""")
        assert not CommonSubexpressionElimination().run(cdfg)
        assert kinds_of(cdfg).count(OpKind.SUB) == 2


class TestStrengthReduction:
    def test_mul_half_becomes_shift(self):
        """§2: 'The multiplication times 0.5 can be replaced by a right
        shift by one.'"""
        cdfg = compile_source("""
procedure p(input a: fixed<16,8>; output b: fixed<16,8>);
begin
  b := 0.5 * a;
end
""")
        assert StrengthReduction().run(cdfg)
        cdfg.validate()
        assert OpKind.MUL not in kinds_of(cdfg)
        assert OpKind.SHR in kinds_of(cdfg)
        assert run_behavior(cdfg, {"a": 0.75})["b"] == 0.375

    def test_int_mul_power_of_two(self):
        cdfg = compile_source("""
procedure p(input a: int<16>; output b: int<16>);
begin
  b := a * 8;
end
""")
        assert StrengthReduction().run(cdfg)
        assert OpKind.SHL in kinds_of(cdfg)
        assert run_behavior(cdfg, {"a": 5})["b"] == 40

    def test_div_power_of_two(self):
        cdfg = compile_source("""
procedure p(input a: fixed<16,8>; output b: fixed<16,8>);
begin
  b := a / 4.0;
end
""")
        assert StrengthReduction().run(cdfg)
        assert OpKind.DIV not in kinds_of(cdfg)
        assert run_behavior(cdfg, {"a": 1.0})["b"] == 0.25

    def test_add_one_becomes_inc(self):
        """§2: 'The addition of 1 to I can be replaced by an increment
        operation.'"""
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + 1;
end
""")
        assert StrengthReduction().run(cdfg)
        assert OpKind.INC in kinds_of(cdfg)
        assert run_behavior(cdfg, {"a": 4})["b"] == 5

    def test_sub_one_becomes_dec(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a - 1;
end
""")
        assert StrengthReduction().run(cdfg)
        assert OpKind.DEC in kinds_of(cdfg)

    def test_mul_by_three_untouched(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a * 3;
end
""")
        assert not StrengthReduction().run(cdfg)

    def test_int_mul_by_fraction_untouched(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a * 2 / 3;
end
""")
        StrengthReduction().run(cdfg)
        assert OpKind.DIV in kinds_of(cdfg)  # /3 not reducible


class TestCounterNarrowing:
    def test_sqrt_counter_narrows(self):
        """§2: 'the loop-ending criterion can be changed to I = 0 using
        a two-bit variable for I.'"""
        cdfg = sqrt_cdfg()
        PassManager([StrengthReduction(), CounterNarrowing()]).run(cdfg)
        cdfg.validate()
        assert cdfg.variables["I"] == IntType(2, signed=False)
        assert OpKind.EQ in kinds_of(cdfg)
        assert OpKind.GT not in kinds_of(cdfg)
        # Behaviour identical: still exactly 4 Newton iterations.
        out = run_behavior(cdfg, {"X": 0.25})
        assert out["Y"] == pytest.approx(0.5, abs=1e-3)

    def test_limit_not_power_of_two_untouched(self):
        cdfg = compile_source("""
procedure p(input a: fixed<16,8>; output b: fixed<16,8>);
var i: uint<4>;
begin
  b := a;
  i := 0;
  repeat
    b := b + a;
    i := i + 1;
  until i > 4;
end
""")
        PassManager([StrengthReduction(), CounterNarrowing()]).run(cdfg)
        assert cdfg.variables["i"] == IntType(4, signed=False)

    def test_counter_with_observer_untouched(self):
        """A counter whose value is *used* cannot be narrowed."""
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i: uint<4>;
begin
  b := 0;
  i := 0;
  repeat
    b := b + i;
    i := i + 1;
  until i > 3;
end
""")
        expected = run_behavior(cdfg, {"a": 0})["b"]
        PassManager([StrengthReduction(), CounterNarrowing()]).run(cdfg)
        assert cdfg.variables["i"] == IntType(4, signed=False)
        assert run_behavior(cdfg, {"a": 0})["b"] == expected


class TestTripCount:
    def test_sqrt_trip_count(self):
        cdfg = sqrt_cdfg()
        TripCountAnalysis().run(cdfg)
        assert cdfg.loops()[0].trip_count == 4

    def test_narrowed_counter_trip_count(self):
        cdfg = sqrt_cdfg()
        PassManager([
            StrengthReduction(), CounterNarrowing(), TripCountAnalysis()
        ]).run(cdfg)
        assert cdfg.loops()[0].trip_count == 4

    def test_data_dependent_loop_unannotated(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  repeat
    b := b + 1;
  until b > a;
end
""")
        TripCountAnalysis().run(cdfg)
        assert cdfg.loops()[0].trip_count is None


class TestUnrolling:
    def test_sqrt_fully_unrolls(self):
        """§2: 'Loop unrolling can also be done in this case since the
        number of iterations is fixed and small.'"""
        cdfg = sqrt_cdfg()
        expected = {
            x: run_behavior(cdfg, {"X": x})["Y"] for x in (0.1, 0.5, 0.9)
        }
        optimize(cdfg, unroll=True)
        cdfg.validate()
        assert cdfg.loops() == []
        assert kinds_of(cdfg).count(OpKind.DIV) == 4
        for x, y in expected.items():
            assert run_behavior(cdfg, {"X": x})["Y"] == y

    def test_for_loop_unrolls(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 0 to 3 do b := b + a;
end
""")
        expected = run_behavior(cdfg, {"a": 5})["b"]
        LoopUnrolling().run(cdfg)
        cdfg.validate()
        assert cdfg.loops() == []
        assert run_behavior(cdfg, {"a": 5})["b"] == expected

    def test_unknown_trips_not_unrolled(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  repeat
    b := b + 1;
  until b > a;
end
""")
        assert not LoopUnrolling().run(cdfg)

    def test_max_trips_respected(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 0 to 9 do b := b + a;
end
""")
        assert not LoopUnrolling(max_trips=5).run(cdfg)


class TestTreeHeight:
    def test_chain_balanced(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input b: int<8>; input c: int<8>;
            input d: int<8>; output o: int<8>);
begin
  o := a + b + c + d;
end
""")
        from repro.ir import dependence_graph
        from repro.ir.dfg import critical_path_length

        block = cdfg.blocks()[0]
        delay = lambda op: 1 if op.kind is OpKind.ADD else 0  # noqa: E731
        before = critical_path_length(dependence_graph(block.ops), delay)
        assert TreeHeightReduction().run(cdfg)
        cdfg.validate()
        after = critical_path_length(dependence_graph(block.ops), delay)
        assert before == 3 and after == 2
        out = run_behavior(cdfg, {"a": 1, "b": 2, "c": 3, "d": 4})
        assert out["o"] == 10

    def test_multi_use_intermediate_not_touched(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input b: int<8>; input c: int<8>;
            output o: int<8>; output t: int<8>);
begin
  t := a + b;
  o := t + c + a;
end
""")
        changed = TreeHeightReduction().run(cdfg)
        cdfg.validate()
        out = run_behavior(cdfg, {"a": 1, "b": 2, "c": 3})
        assert out == {"t": 3, "o": 7}
        del changed


class TestStandardPipeline:
    def test_sqrt_reproduces_paper_body(self):
        """After optimization the loop body is exactly the paper's
        Fig. 2 op set: div, add, shift, increment, equality test."""
        cdfg = sqrt_cdfg()
        optimize(cdfg)
        body = cdfg.loops()[0].test_block
        kinds = sorted(op.kind.value for op in body.compute_ops())
        assert kinds == ["add", "div", "eq", "inc", "shr"]

    @pytest.mark.parametrize("x", [0.0625, 0.2, 0.5, 0.9, 1.0])
    def test_optimization_preserves_sqrt(self, x):
        reference = run_behavior(sqrt_cdfg(), {"X": x})
        cdfg = sqrt_cdfg()
        optimize(cdfg)
        assert run_behavior(cdfg, {"X": x}) == reference

    def test_pipeline_reaches_fixpoint(self):
        cdfg = sqrt_cdfg()
        report1 = optimize(cdfg)
        report2 = optimize(cdfg)
        assert report1.applied
        assert not report2.applied

    def test_diffeq_preserved(self):
        from repro.workloads import diffeq_cdfg, diffeq_inputs

        inputs = diffeq_inputs(3)
        reference = run_behavior(diffeq_cdfg(), inputs)
        cdfg = diffeq_cdfg()
        optimize(cdfg, tree_height=True)
        assert run_behavior(cdfg, inputs) == reference
