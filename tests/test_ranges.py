"""Tests for the interval analysis (repro.analysis.ranges) and the
range-driven narrowing transform (repro.transforms.narrow).

The load-bearing property is *soundness*: every value the behavioral
simulator ever produces must lie inside the interval the analysis
inferred for it.  The corpus replay test pins this mechanically over
the whole fuzz corpus plus the loop-heavy built-in workloads.
"""

import random
from pathlib import Path

import pytest

from repro.analysis.ranges import (
    Interval,
    coerce_interval,
    fits_type,
    op_interval,
    range_analysis,
    refine_interval,
    type_interval,
)
from repro.core.engine import SynthesisOptions, synthesize
from repro.estimation.area import estimate_area
from repro.ir.opcodes import OpKind
from repro.ir.types import FixedType, IntType
from repro.lang import compile_source
from repro.sim.behavior import BehavioralSimulator
from repro.store.keys import options_token
from repro.transforms import optimize
from repro.transforms.narrow import RangeNarrowing, narrowed_type
from repro.verify.corpus import Corpus
from repro.verify.differential import run_differential
from repro.workloads import DIFFEQ_SOURCE, SQRT_SOURCE, build_dfg

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"

I8 = IntType(8)
U8 = IntType(8, signed=False)
F16 = FixedType(16, 8)

#: The paper's sqrt operating contract: X in <1/16, 1>.
SQRT_ASSUME = {"X": (0.0625, 1.0)}
DIFFEQ_ASSUME = {
    "x0": (0.0, 1.0),
    "y0": (0.0, 1.0),
    "u0": (0.0, 1.0),
    "dx": (0.0625, 0.125),
    "a": (0.0, 1.0),
}


# ----------------------------------------------------------------------
# Interval primitives
# ----------------------------------------------------------------------


class TestInterval:
    def test_hull_and_intersect(self):
        a, b = Interval(0, 4), Interval(2, 9)
        assert a.hull(b) == Interval(0, 9)
        assert a.intersect(b) == Interval(2, 4)
        assert Interval(0, 1).intersect(Interval(5, 6)) is None

    def test_type_interval(self):
        assert type_interval(I8) == Interval(-128, 127)
        assert type_interval(U8) == Interval(0, 255)
        iv = type_interval(F16)
        assert iv.lo == -128.0
        assert iv.hi == pytest.approx(127.99609375)

    def test_coerce_interval_wraps_to_full_range(self):
        # An interval escaping the representable range must collapse
        # to the full type range (wrapping is not monotone).
        assert coerce_interval(Interval(100, 200), I8) == type_interval(I8)
        assert coerce_interval(Interval(-5, 5), I8) == Interval(-5, 5)

    def test_fits_type_is_exact_representability(self):
        assert fits_type(Interval(0, 15), IntType(4, signed=False))
        assert not fits_type(Interval(0, 16), IntType(4, signed=False))
        assert not fits_type(Interval(0.5, 1.5), I8)


class TestOpInterval:
    def op(self, kind, ivs, types, result):
        return op_interval(kind, ivs, types, result)

    def test_add_corners(self):
        _, res = self.op(OpKind.ADD, [Interval(1, 3), Interval(10, 20)],
                         [I8, I8], I8)
        assert res == Interval(11, 23)

    def test_mul_sign_corners(self):
        raw, _ = self.op(OpKind.MUL, [Interval(-2, 3), Interval(-5, 4)],
                         [I8, I8], I8)
        assert raw == Interval(-15, 12)

    def test_wrapping_add_collapses(self):
        raw, res = self.op(OpKind.ADD, [Interval(100, 120),
                                        Interval(100, 120)], [I8, I8], I8)
        assert raw == Interval(200, 240)
        assert res == type_interval(I8)

    def test_div_by_possibly_zero_is_full_range(self):
        raw, res = self.op(OpKind.DIV, [Interval(1, 10), Interval(0, 3)],
                           [I8, I8], I8)
        assert res == type_interval(I8)

    def test_div_truncates_toward_zero(self):
        _, res = self.op(OpKind.DIV, [Interval(-7, 7), Interval(2, 2)],
                         [I8, I8], I8)
        assert res == Interval(-3, 3)

    def test_comparison_decided_by_disjoint_ranges(self):
        _, res = self.op(OpKind.LT, [Interval(0, 3), Interval(5, 9)],
                         [I8, I8], IntType(1, signed=False))
        assert res == Interval(1, 1)
        _, res = self.op(OpKind.GE, [Interval(0, 3), Interval(5, 9)],
                         [I8, I8], IntType(1, signed=False))
        assert res == Interval(0, 0)

    def test_comparison_overlap_is_unknown(self):
        _, res = self.op(OpKind.LT, [Interval(0, 6), Interval(5, 9)],
                         [I8, I8], IntType(1, signed=False))
        assert res == Interval(0, 1)

    def test_shift_amount_beyond_width_is_zero(self):
        _, res = self.op(OpKind.SHR, [Interval(0, 255), Interval(32, 32)],
                         [U8, IntType(6, signed=False)], U8)
        assert res == Interval(0, 0)


class TestRefinement:
    def test_lt_constant_tightens_upper_bound(self):
        refined = refine_interval(Interval(0, 100), OpKind.LT,
                                  Interval(10, 10), I8)
        assert refined == Interval(0, 9)

    def test_gt_constant_tightens_lower_bound(self):
        refined = refine_interval(Interval(0, 100), OpKind.GT,
                                  Interval(10, 10), I8)
        assert refined == Interval(11, 100)

    def test_contradiction_is_infeasible(self):
        assert refine_interval(Interval(0, 5), OpKind.GT,
                               Interval(10, 10), I8) is None


# ----------------------------------------------------------------------
# Whole-procedure analysis
# ----------------------------------------------------------------------


class TestRangeAnalysis:
    def test_sqrt_loop_counter_is_bounded(self):
        # The post-test loop `I := I + 1; until I > 3` must settle the
        # counter at [0, 4] — widening jumps it to the type extreme and
        # the narrowing sweeps plus the back-edge refinement pull it
        # back down.
        cdfg = compile_source(SQRT_SOURCE)
        result = range_analysis(cdfg)
        assert result.variables["I"] == Interval(0, 4)

    def test_assume_contract_bounds_the_iterate(self):
        cdfg = compile_source(SQRT_SOURCE)
        result = range_analysis(cdfg, assume=SQRT_ASSUME)
        assert result.variables["X"] == Interval(0.0625, 1.0)
        y = result.variables["Y"]
        full = type_interval(cdfg.variables["Y"])
        assert full.lo < y.lo and y.hi < full.hi

    def test_unknown_assume_names_are_ignored(self):
        cdfg = compile_source(SQRT_SOURCE)
        result = range_analysis(cdfg, assume={"nope": (0, 1)})
        assert result.variables["X"] == type_interval(
            cdfg.variables["X"]
        )

    def test_accumulator_widens_to_full_range(self):
        # diffeq's u accumulates without a range-bounding guard: the
        # analysis must give up soundly (full range), not loop forever.
        cdfg = compile_source(DIFFEQ_SOURCE)
        result = range_analysis(cdfg, assume=DIFFEQ_ASSUME)
        assert result.variables["u"] == type_interval(
            cdfg.variables["u"]
        )
        # ... while the loop-guarded x stays bounded by `x < a`.
        assert result.variables["x"].hi <= 1.25


# ----------------------------------------------------------------------
# Soundness: simulate, assert containment
# ----------------------------------------------------------------------


class RecordingSimulator(BehavioralSimulator):
    """Behavioral simulator that snapshots every produced value."""

    def __init__(self, cdfg):
        super().__init__(cdfg)
        self.observed: list[tuple[int, object]] = []

    def _exec_block(self, block, *args, **kwargs):
        out = super()._exec_block(block, *args, **kwargs)
        for op in block.ops:
            if op.result is not None and op.result.id in self._values:
                self.observed.append(
                    (op.result.id, self._values[op.result.id])
                )
        return out


def _input_vectors(cdfg, rng, count, assume=None):
    """Deterministic in-range (and in-contract) input vectors."""
    vectors = []
    for _ in range(count):
        vector = {}
        for port in cdfg.inputs:
            if assume and port.name in assume:
                lo, hi = assume[port.name]
            else:
                iv = type_interval(port.type)
                lo, hi = iv.lo, iv.hi
            if isinstance(port.type, IntType):
                vector[port.name] = rng.randint(int(lo), int(hi))
            else:
                vector[port.name] = lo + rng.random() * (hi - lo)
        vectors.append(vector)
    return vectors


def _assert_sound(cdfg, vectors, assume=None):
    from repro.errors import SimulationError

    result = range_analysis(cdfg, assume=assume)
    checked = 0
    for vector in vectors:
        simulator = RecordingSimulator(cdfg)
        try:
            simulator.run(vector)
        except SimulationError:
            continue  # div-by-zero / runaway loop: nothing to check
        for vid, value in simulator.observed:
            interval = result.values.get(vid)
            assert interval is not None, f"value {vid} has no interval"
            assert interval.contains(value), (
                f"{cdfg.name}: value {vid} = {value!r} escapes its "
                f"inferred interval {interval} for inputs {vector!r}"
            )
            checked += 1
    return checked


class TestSoundness:
    def test_corpus_soundness(self):
        """Replay the whole fuzz corpus: every simulated value must lie
        in its inferred interval."""
        entries = Corpus(CORPUS_DIR).load()
        assert entries, "fuzz corpus is missing"
        rng = random.Random(20260809)
        total = 0
        for entry in entries:
            cdfg = build_dfg(entry.case.recipe)
            vectors = _input_vectors(cdfg, rng, count=5)
            total += _assert_sound(cdfg, vectors)
        assert total > 0

    def test_sqrt_soundness_with_loops_and_contract(self):
        cdfg = compile_source(SQRT_SOURCE)
        rng = random.Random(1)
        vectors = _input_vectors(cdfg, rng, count=8, assume=SQRT_ASSUME)
        assert _assert_sound(cdfg, vectors, assume=SQRT_ASSUME) > 0

    def test_sqrt_soundness_unconstrained(self):
        cdfg = compile_source(SQRT_SOURCE)
        rng = random.Random(2)
        vectors = _input_vectors(cdfg, rng, count=8)
        _assert_sound(cdfg, vectors)

    def test_diffeq_soundness_with_contract(self):
        cdfg = compile_source(DIFFEQ_SOURCE)
        rng = random.Random(3)
        vectors = _input_vectors(cdfg, rng, count=6,
                                 assume=DIFFEQ_ASSUME)
        assert _assert_sound(cdfg, vectors, assume=DIFFEQ_ASSUME) > 0

    def test_optimized_ir_soundness(self):
        """The narrowing pass consumes post-optimizer IR; the intervals
        must hold there too."""
        for source, assume in ((SQRT_SOURCE, SQRT_ASSUME),
                               (DIFFEQ_SOURCE, DIFFEQ_ASSUME)):
            cdfg = compile_source(source)
            optimize(cdfg)
            rng = random.Random(4)
            vectors = _input_vectors(cdfg, rng, count=5, assume=assume)
            assert _assert_sound(cdfg, vectors, assume=assume) > 0


# ----------------------------------------------------------------------
# Bitwidth narrowing
# ----------------------------------------------------------------------


class TestNarrowedType:
    def test_int_shrinks_to_minimal_width(self):
        assert narrowed_type(IntType(16), Interval(0, 5)) == IntType(4)
        assert narrowed_type(
            IntType(16, signed=False), Interval(0, 255)
        ) == IntType(8, signed=False)

    def test_fixed_keeps_fractional_bits(self):
        narrow = narrowed_type(FixedType(32, 16), Interval(0.0, 1.0))
        assert isinstance(narrow, FixedType)
        assert narrow.frac_bits == 16
        assert narrow.width == 18

    def test_never_grows(self):
        assert narrowed_type(IntType(4), Interval(-1000, 1000)) is None


class TestRangeNarrowing:
    def test_sqrt_contract_narrows_values(self):
        cdfg = compile_source(SQRT_SOURCE)
        optimize(cdfg)
        narrow = RangeNarrowing(assume=SQRT_ASSUME)
        assert narrow.run(cdfg)
        assert narrow.narrowed_values > 0
        assert narrow.bits_saved > 0
        assert "narrowed" in narrow.summary()

    def test_ports_are_never_narrowed(self):
        cdfg = compile_source(SQRT_SOURCE)
        declared = dict(cdfg.variables)
        optimize(cdfg)
        RangeNarrowing(assume=SQRT_ASSUME).run(cdfg)
        for port in list(cdfg.inputs) + list(cdfg.outputs):
            assert cdfg.variables[port.name] == declared[port.name]

    def test_unconstrained_inputs_narrow_nothing_on_sqrt(self):
        # Without the operating contract the divider result spans the
        # full type range; a sound analysis cannot shrink anything
        # that matters.  This pins the honesty of the contract story.
        cdfg = compile_source(SQRT_SOURCE)
        optimize(cdfg)
        narrow = RangeNarrowing()
        narrow.run(cdfg)
        assert narrow.narrowed_variables == 0

    def test_diffeq_contract_reduces_estimated_area(self):
        assume = tuple(
            (name, lo, hi) for name, (lo, hi) in DIFFEQ_ASSUME.items()
        )
        base = synthesize(DIFFEQ_SOURCE, options=SynthesisOptions())
        narrowed = synthesize(
            DIFFEQ_SOURCE,
            options=SynthesisOptions(narrow=True, assume_ranges=assume),
        )
        assert (
            estimate_area(narrowed).total < estimate_area(base).total
        )
        assert any("narrow:" in line for line in narrowed.log)

    def test_narrowed_design_is_equivalent(self):
        assume = tuple(
            (name, lo, hi) for name, (lo, hi) in DIFFEQ_ASSUME.items()
        )
        report = run_differential(
            DIFFEQ_SOURCE,
            schedulers=["list"],
            allocators=["left-edge"],
            options=SynthesisOptions(narrow=True, assume_ranges=assume),
            vectors=[
                {"x0": 0.0, "y0": 1.0, "u0": 1.0, "dx": 0.125, "a": 0.5},
                {"x0": 0.25, "y0": 0.5, "u0": 0.75, "dx": 0.0625,
                 "a": 1.0},
            ],
        )
        assert report.ok

    def test_narrow_options_change_cache_and_store_keys(self):
        plain = SynthesisOptions()
        narrow = SynthesisOptions(
            narrow=True, assume_ranges=(("X", 0.0625, 1.0),)
        )
        assert plain.cache_key() != narrow.cache_key()
        assert options_token(plain) != options_token(narrow)
