"""Tests for the behavioral interpreter and the shared op semantics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.ir import IntType, OpKind
from repro.ir.types import BOOL, FixedType
from repro.lang import compile_source
from repro.sim import BehavioralSimulator, run_behavior
from repro.sim.semantics import coerce, evaluate
from repro.workloads import sqrt_cdfg

I8 = IntType(8)
F16 = FixedType(16, 8)


class TestSemantics:
    def test_add_wraps(self):
        assert evaluate(OpKind.ADD, [120, 10], [I8, I8], I8) == -126

    def test_sub(self):
        assert evaluate(OpKind.SUB, [5, 9], [I8, I8], I8) == -4

    def test_mul_fixed_quantizes(self):
        result = evaluate(OpKind.MUL, [0.5, 0.5], [F16, F16], F16)
        assert result == 0.25

    def test_div_truncates_toward_zero(self):
        assert evaluate(OpKind.DIV, [-7, 2], [I8, I8], I8) == -3
        assert evaluate(OpKind.DIV, [7, -2], [I8, I8], I8) == -3

    def test_div_by_zero(self):
        with pytest.raises(SimulationError):
            evaluate(OpKind.DIV, [1, 0], [I8, I8], I8)

    def test_mod_sign_follows_dividend(self):
        assert evaluate(OpKind.MOD, [-7, 2], [I8, I8], I8) == -1
        assert evaluate(OpKind.MOD, [7, -2], [I8, I8], I8) == 1

    def test_shr_fixed_is_half(self):
        """The paper's strength reduction: x >> 1 == x * 0.5 in fixed."""
        assert evaluate(OpKind.SHR, [0.75, 1], [F16, I8], F16) == 0.375

    def test_shr_int_arithmetic(self):
        assert evaluate(OpKind.SHR, [-8, 1], [I8, I8], I8) == -4

    def test_shl(self):
        assert evaluate(OpKind.SHL, [3, 2], [I8, I8], I8) == 12

    def test_negative_shift_rejected(self):
        with pytest.raises(SimulationError):
            evaluate(OpKind.SHR, [1, -1], [I8, I8], I8)

    def test_inc_dec(self):
        assert evaluate(OpKind.INC, [3], [I8], I8) == 4
        assert evaluate(OpKind.DEC, [3], [I8], I8) == 2

    def test_inc_wraps_two_bit_counter(self):
        two_bit = IntType(2, signed=False)
        assert evaluate(OpKind.INC, [3], [two_bit], two_bit) == 0

    def test_bitwise(self):
        assert evaluate(OpKind.AND, [0b1100, 0b1010], [I8, I8], I8) == 0b1000
        assert evaluate(OpKind.OR, [0b1100, 0b1010], [I8, I8], I8) == 0b1110
        assert evaluate(OpKind.XOR, [0b1100, 0b1010], [I8, I8], I8) == 0b0110
        assert evaluate(OpKind.NOT, [0], [BOOL], BOOL) == 1

    def test_comparisons(self):
        assert evaluate(OpKind.LT, [1, 2], [I8, I8], BOOL) == 1
        assert evaluate(OpKind.GE, [1, 2], [I8, I8], BOOL) == 0
        assert evaluate(OpKind.EQ, [2, 2], [I8, I8], BOOL) == 1

    def test_mux(self):
        assert evaluate(OpKind.MUX, [1, 10, 20], [BOOL, I8, I8], I8) == 10
        assert evaluate(OpKind.MUX, [0, 10, 20], [BOOL, I8, I8], I8) == 20

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add_matches_wrapped_python(self, a, b):
        t = IntType(12)
        result = evaluate(OpKind.ADD, [t.wrap(a), t.wrap(b)], [t, t], t)
        assert result == t.wrap(a + b)

    @given(st.integers(-100, 100), st.integers(1, 100))
    def test_divmod_identity(self, a, b):
        t = IntType(16)
        q = evaluate(OpKind.DIV, [a, b], [t, t], t)
        r = evaluate(OpKind.MOD, [a, b], [t, t], t)
        assert q * b + r == a


class TestBehavioralSimulator:
    def test_sqrt_converges(self):
        cdfg = sqrt_cdfg()
        for x in (0.0625, 0.125, 0.3, 0.5, 0.77, 1.0):
            out = run_behavior(cdfg, {"X": x})
            assert out["Y"] == pytest.approx(math.sqrt(x), abs=2e-4)

    def test_missing_input_rejected(self):
        with pytest.raises(SimulationError):
            run_behavior(sqrt_cdfg(), {})

    def test_unknown_input_rejected(self):
        with pytest.raises(SimulationError):
            run_behavior(sqrt_cdfg(), {"X": 1.0, "bogus": 2})

    def test_stats_collected(self):
        sim = BehavioralSimulator(sqrt_cdfg())
        sim.run({"X": 0.5})
        assert sim.stats.blocks_executed == 1 + 4  # entry + 4 iterations
        assert sim.stats.op_histogram[OpKind.DIV] == 4

    def test_loop_guard(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  while a = a do b := b + 1;
end
""")
        sim = BehavioralSimulator(cdfg, max_iterations=100)
        with pytest.raises(SimulationError):
            sim.run({"a": 1})

    def test_if_else(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a > 0 then b := 1; else b := 2;
end
""")
        assert run_behavior(cdfg, {"a": 5})["b"] == 1
        assert run_behavior(cdfg, {"a": -5})["b"] == 2

    def test_memories(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var m: int<8>[4];
var i: uint<3>;
begin
  for i := 0 to 3 do m[i] := a + i;
  b := m[0] + m[3];
end
""")
        sim = BehavioralSimulator(cdfg)
        out = sim.run({"a": 10})
        assert out["b"] == 10 + 13
        assert sim.memory_contents("m") == [10, 11, 12, 13]

    def test_memory_initialization(self):
        cdfg = compile_source("""
procedure p(input i: uint<2>; output b: int<8>);
var m: int<8>[4];
begin
  b := m[i];
end
""")
        out = run_behavior(cdfg, {"i": 2}, {"m": [5, 6, 7, 8]})
        assert out["b"] == 7

    def test_out_of_range_index(self):
        cdfg = compile_source("""
procedure p(input i: uint<4>; output b: int<8>);
var m: int<8>[4];
begin
  b := m[i];
end
""")
        with pytest.raises(SimulationError):
            run_behavior(cdfg, {"i": 9})

    def test_variable_wraparound(self):
        """Writes quantize to the declared type, hardware style."""
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: uint<2>);
begin
  b := a;
end
""")
        assert run_behavior(cdfg, {"a": 5})["b"] == 1  # 5 mod 4

    def test_for_downto(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 3 downto 1 do b := b + i;
end
""")
        assert run_behavior(cdfg, {"a": 0})["b"] == 6

    def test_nested_loops(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i, j: int<8>;
begin
  b := 0;
  for i := 0 to 2 do
    for j := 0 to 2 do
      b := b + 1;
end
""")
        assert run_behavior(cdfg, {"a": 0})["b"] == 9

    def test_coerce_rejects_arrays(self):
        from repro.ir.types import ArrayType

        with pytest.raises(SimulationError):
            coerce(1, ArrayType(I8, 4))
