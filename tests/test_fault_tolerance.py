"""End-to-end fault tolerance of parallel exploration and fuzzing.

The acceptance contract of the ``repro.exec`` runtime, exercised
through the real public entry points with deterministic fault
injection (``docs/resilience.md``): a failure costs exactly the task
that failed — completed work is kept, never re-executed, and parallel
telemetry stays equal to serial telemetry for the tasks that
completed.
"""

import time

import pytest

from repro import obs
from repro.core import SynthesisOptions, clear_synthesis_cache
from repro.errors import TaskExecutionError
from repro.explore import (
    ParallelExplorer,
    explore_fu_range,
    search_for_latency,
)
from repro.explore.dse import _PointBuilder
from repro.verify import fuzz_seeds
from repro.workloads import SQRT_SOURCE

pytestmark = pytest.mark.fault_smoke

LIMITS8 = [1, 2, 3, 4, 5, 6, 7, 8]


def rows(points):
    return [
        (str(p.constraints), p.area, p.cycles, p.clock_ns)
        for p in points
    ]


def counters():
    return obs.metrics().counters()


class TestExploreFaultTolerance:
    def test_sweep_survives_crash_and_hang(self, monkeypatch):
        """The issue's acceptance scenario: an 8-point sweep with one
        crashing and one hanging point still returns all 8 points,
        identical to a serial sweep, within the timeout budget."""
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "30")
        serial = explore_fu_range(SQRT_SOURCE, LIMITS8, use_cache=False)
        clear_synthesis_cache()
        obs.reset_metrics()

        options = SynthesisOptions(fault_spec="crash:2,hang:5")
        started = time.monotonic()
        with obs.tracing():
            result = explore_fu_range(
                SQRT_SOURCE, LIMITS8, options=options, n_jobs=4,
                use_cache=False, task_timeout_s=2.0,
            )
        elapsed = time.monotonic() - started

        assert result.failures == []
        assert rows(result.points) == rows(serial.points)
        # Bounded by the 2s budget + recovery, not the 30s hang.
        assert elapsed < 25.0

        got = counters()
        assert got["exec.tasks.crashed"] >= 1
        assert got["exec.tasks.timeout"] == 1
        assert got["exec.tasks.degraded"] >= 2  # crash + hang rebuilds
        assert got["exec.pool.respawns"] >= 1
        # Every point evaluated exactly once, worker or parent.
        assert got["dse.points.evaluated"] == len(LIMITS8)

        spans = obs.tracer().records()
        points = [r for r in spans if r.name == "dse.point"]
        assert len(points) == len(LIMITS8)
        assert any(r.name == "exec.serial_fallback" for r in spans)

    def test_completed_points_survive_a_genuine_error(self):
        """Regression for the serial-fallback bug: one failing point
        out of 8 must not discard — or re-synthesize — the other 7."""
        options = SynthesisOptions(fault_spec="error:3")
        result = explore_fu_range(
            SQRT_SOURCE, LIMITS8, options=options, n_jobs=4,
            use_cache=False,
        )
        assert len(result.points) == 7
        assert [str(p.constraints) for p in result.points] == [
            f"fu={n}" for n in LIMITS8 if n != 3
        ]
        (failure,) = result.failures
        assert failure.kind == "error"
        assert failure.label == "3"
        assert "InjectedFault" in failure.message
        assert not result.ok
        assert failure.render() in result.table()

        got = counters()
        # The 7 healthy points synthesized exactly once each; the
        # failing point was never re-run (errors are final).
        assert got["dse.measurements.run"] == 7
        assert got["dse.points.evaluated"] == 7
        assert got.get("exec.tasks.retried", 0) == 0

    def test_parallel_counters_match_serial_for_healthy_points(self):
        serial = {}
        for n_jobs in (1, 4):
            clear_synthesis_cache()
            obs.reset_metrics()
            explore_fu_range(SQRT_SOURCE, LIMITS8, n_jobs=n_jobs,
                             use_cache=False)
            serial[n_jobs] = counters()
        # dse.measurements.run is deliberately absent: the serial
        # builder memoizes measurements across identical designs,
        # workers legitimately measure once per point.
        for key in ("dse.points.evaluated",
                    "scheduler.invocations{scheduler=list}",
                    "allocator.invocations{allocator=left-edge}"):
            assert serial[4][key] == serial[1][key], key

    def test_single_limit_short_circuits_the_pool(self):
        builder = _PointBuilder(SQRT_SOURCE, "fu", None, None)
        explorer = ParallelExplorer(max_workers=4)
        points, failures = explorer.build_points(builder, [2])
        assert len(points) == 1
        assert failures == []
        assert counters().get("exec.tasks.submitted", 0) == 0

    def test_unpicklable_factory_degrades_and_counts(self):
        from repro.lang import compile_source

        factory = lambda: compile_source(SQRT_SOURCE)  # noqa: E731
        result = explore_fu_range(factory, [1, 2, 3], n_jobs=4,
                                  use_cache=False)
        assert len(result.points) == 3
        assert result.failures == []
        assert counters()["exec.tasks.degraded"] == 3

    def test_latency_search_raises_on_probe_failure(self):
        """Bisection cannot use partial results, so permanent probe
        failures surface as one structured exception."""
        options = SynthesisOptions(fault_spec="error:*")
        with pytest.raises(TaskExecutionError, match="probe") as info:
            search_for_latency(SQRT_SOURCE, 10, max_units=8,
                               options=options, n_jobs=2,
                               use_cache=False)
        assert info.value.failures
        assert all(f.kind == "error" for f in info.value.failures)


class TestFuzzFaultTolerance:
    def test_crashed_seed_is_reported_not_retried(self, monkeypatch,
                                                  tmp_path):
        """A crashing seed is a finding: reported with its seed
        number, while completed seeds keep their results."""
        import repro.verify.fuzz as fuzz_mod

        original = fuzz_mod.run_tasks

        def one_worker(*args, **kwargs):
            # A 1-wide pool keeps the crash's blast radius
            # deterministic (BrokenProcessPool fails every in-flight
            # future, so a co-tenant seed could be penalized too).
            kwargs["max_workers"] = 1
            return original(*args, **kwargs)

        monkeypatch.setattr(fuzz_mod, "run_tasks", one_worker)
        monkeypatch.setenv("REPRO_FAULT", "crash:2")

        report = fuzz_seeds([1, 2, 3], ops=8, inputs=3, jobs=2,
                            shrink=False, artifacts_dir=str(tmp_path))
        assert not report.ok
        assert report.failures == []  # healthy seeds found no bugs
        (crashed,) = report.task_failures
        assert crashed.label == "2"
        assert crashed.kind == "crash"
        rendered = report.render()
        assert "1 crashed" in rendered
        assert "seed 2: worker crash" in rendered

        got = counters()
        assert got["fuzz.seeds.checked"] == 2
        assert got["fuzz.seeds.crashed"] == 1

    def test_serial_and_parallel_runs_agree(self, tmp_path):
        serial = fuzz_seeds([1, 2], ops=8, inputs=3, jobs=1,
                            shrink=False, artifacts_dir=str(tmp_path))
        serial_checked = counters()["fuzz.seeds.checked"]
        obs.reset_metrics()
        parallel = fuzz_seeds([1, 2], ops=8, inputs=3, jobs=2,
                              shrink=False,
                              artifacts_dir=str(tmp_path))
        assert counters()["fuzz.seeds.checked"] == serial_checked == 2
        assert serial.task_failures == [] == parallel.task_failures
        assert ([f.seed for f in parallel.failures]
                == [f.seed for f in serial.failures])
        assert parallel.ok == serial.ok
