"""Tests for Quine-McCluskey minimization and FSM logic synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import (
    encode_states,
    literal_count,
    minimize_next_state_logic,
    minimum_cover,
    prime_implicants,
)
from repro.controller.logic import _covers, _to_bits
from repro.core import SynthesisOptions, synthesize
from repro.errors import ControllerError
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE


def evaluate_cover(cover, width, value):
    bits = _to_bits(value, width)
    return any(_covers(cube, bits) for cube in cover)


class TestQuineMcCluskey:
    def test_single_minterm(self):
        cover = minimum_cover(2, {3}, set())
        assert cover == ["11"]

    def test_full_function_collapses(self):
        cover = minimum_cover(2, {0, 1, 2, 3}, set())
        assert cover == ["--"]

    def test_classic_example(self):
        """f(a,b,c) = Σm(0,1,2,5,6,7) — the textbook 3-term result."""
        cover = minimum_cover(3, {0, 1, 2, 5, 6, 7}, set())
        assert len(cover) == 3

    def test_xor_cannot_merge(self):
        cover = minimum_cover(2, {1, 2}, set())
        assert sorted(cover) == ["01", "10"]

    def test_dont_cares_enlarge_cubes(self):
        # f = m(1), dc = {0, 3}: '0-' or '-1' covers with one literal.
        cover = minimum_cover(2, {1}, {0, 3})
        assert len(cover) == 1
        assert literal_count(cover) == 1

    def test_empty_function(self):
        assert minimum_cover(4, set(), {1, 2}) == []

    def test_width_cap(self):
        with pytest.raises(ControllerError):
            prime_implicants(20, {1}, set())

    @settings(max_examples=30, deadline=None)
    @given(
        truth=st.integers(0, (1 << 16) - 1),
        dc_mask=st.integers(0, (1 << 16) - 1),
    )
    def test_cover_is_correct(self, truth, dc_mask):
        """Property: the cover is 1 on every required minterm and 0 on
        every required zero (don't cares free)."""
        width = 4
        ones = {i for i in range(16) if truth >> i & 1}
        dont_cares = {
            i for i in range(16) if dc_mask >> i & 1
        } - ones
        cover = minimum_cover(width, ones, dont_cares)
        for value in range(16):
            result = evaluate_cover(cover, width, value)
            if value in ones:
                assert result, (value, cover)
            elif value not in dont_cares:
                assert not result, (value, cover)

    @settings(max_examples=20, deadline=None)
    @given(truth=st.integers(1, (1 << 8) - 1))
    def test_cover_only_primes(self, truth):
        width = 3
        ones = {i for i in range(8) if truth >> i & 1}
        primes = set(prime_implicants(width, ones, set()))
        cover = minimum_cover(width, ones, set())
        assert set(cover) <= primes


class TestFSMLogic:
    def design(self, fu=2):
        return synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": fu})
        )

    def test_minimization_reduces_terms(self):
        design = self.design(fu=1)
        encoding = encode_states(design.fsm, "binary")
        summary = minimize_next_state_logic(design.fsm, encoding)
        assert summary.terms <= summary.naive_terms
        assert summary.literals > 0
        assert "product terms" in summary.report()

    def test_functions_match_transition_table(self):
        """The minimized cover reproduces every transition exactly."""
        design = self.design(fu=2)
        fsm = design.fsm
        encoding = encode_states(fsm, "binary")
        summary = minimize_next_state_logic(fsm, encoding)
        state_bits = encoding.bits
        for state in fsm.states:
            code = encoding.codes[state.id]
            for cond in (0, 1):
                word = (code << 1) | cond
                transition = state.transition
                if transition.unconditional:
                    target = transition.if_true
                else:
                    target = (
                        transition.if_true if cond
                        else transition.if_false
                    )
                expect_done = target is None
                target_code = (
                    0 if target is None else encoding.codes[target]
                )
                got_done = evaluate_cover(
                    summary.covers["done"], summary.input_bits, word
                )
                assert got_done == expect_done
                for bit in range(state_bits):
                    got = evaluate_cover(
                        summary.covers[f"ns{bit}"],
                        summary.input_bits,
                        word,
                    )
                    assert got == bool(target_code >> bit & 1)

    def test_encoding_changes_logic_cost(self):
        design = self.design(fu=1)
        binary = minimize_next_state_logic(
            design.fsm, encode_states(design.fsm, "binary")
        )
        gray = minimize_next_state_logic(
            design.fsm, encode_states(design.fsm, "gray")
        )
        # Both are valid; costs are measured, not asserted equal.
        assert binary.terms > 0 and gray.terms > 0

    def test_chain_fsm_minimizes_well(self):
        """A straight-line (unrolled) FSM is essentially a counter —
        its next-state logic should minimize far below one term per
        transition."""
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 2}),
                unroll=True,
            ),
        )
        encoding = encode_states(design.fsm, "binary")
        summary = minimize_next_state_logic(design.fsm, encoding)
        assert summary.terms < summary.naive_terms
