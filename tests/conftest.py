"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.scheduling import (
    ResourceConstraints,
    TypedFUModel,
    UniversalFUModel,
)
from repro.workloads import SQRT_SOURCE


@pytest.fixture
def sqrt_source() -> str:
    return SQRT_SOURCE


@pytest.fixture
def universal_model() -> UniversalFUModel:
    return UniversalFUModel()


@pytest.fixture
def unit_model() -> TypedFUModel:
    """Typed FUs, every delay one cycle."""
    return TypedFUModel(single_cycle=True)


@pytest.fixture
def two_fu() -> ResourceConstraints:
    return ResourceConstraints({"fu": 2})


@pytest.fixture
def one_fu() -> ResourceConstraints:
    return ResourceConstraints({"fu": 1})
