"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import clear_synthesis_cache
from repro.scheduling import (
    ResourceConstraints,
    TypedFUModel,
    UniversalFUModel,
)
from repro.workloads import SQRT_SOURCE


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow (raised hypothesis budgets)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _fresh_synthesis_cache():
    """Isolate tests from the process-global design cache.

    Cached designs are shared objects; a test that mutates one (or
    depends on hit/miss counters) must not leak state into the next.
    """
    clear_synthesis_cache()
    yield
    clear_synthesis_cache()


@pytest.fixture(autouse=True)
def _no_design_store(monkeypatch):
    """Keep the persistent store tier out of tests by default.

    A developer's ``REPRO_STORE_DIR`` must not leak cached designs
    into the suite; tests that want the disk tier opt in by calling
    ``configure_store`` themselves.
    """
    from repro.store import reset_store

    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE", raising=False)
    reset_store()
    yield
    reset_store()


@pytest.fixture(autouse=True)
def _fresh_observability():
    """Fresh tracer + zeroed metrics registry per test.

    Also restores the env-derived tracing flag, so a test that
    enables tracing and fails mid-way cannot leak spans (or an
    enabled flag) into the next test.
    """
    obs.reset_tracing()
    obs.reset_metrics()
    obs.reset_memory()
    yield
    obs.reset_tracing()
    obs.reset_metrics()
    obs.reset_memory()


@pytest.fixture(autouse=True)
def _no_run_ledger(monkeypatch):
    """Keep the run ledger out of tests by default.

    Mirrors ``_no_design_store``: a developer's ``REPRO_LEDGER_DIR``
    must not make every synthesized design append a run record; tests
    that want the ledger opt in via ``configure_ledger``.
    """
    from repro.obs.ledger import reset_ledger, reset_ledger_scope

    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    monkeypatch.delenv("REPRO_MEM", raising=False)
    reset_ledger()
    reset_ledger_scope()
    yield
    reset_ledger()
    reset_ledger_scope()


@pytest.fixture
def sqrt_source() -> str:
    return SQRT_SOURCE


@pytest.fixture
def universal_model() -> UniversalFUModel:
    return UniversalFUModel()


@pytest.fixture
def unit_model() -> TypedFUModel:
    """Typed FUs, every delay one cycle."""
    return TypedFUModel(single_cycle=True)


@pytest.fixture
def two_fu() -> ResourceConstraints:
    return ResourceConstraints({"fu": 2})


@pytest.fixture
def one_fu() -> ResourceConstraints:
    return ResourceConstraints({"fu": 1})
