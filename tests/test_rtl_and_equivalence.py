"""RTL simulation, equivalence checking, Verilog emission and the
end-to-end engine grid (every scheduler x allocator on every workload)."""

import math

import pytest

from repro.core import SCHEDULERS, ALLOCATORS, SynthesisOptions, synthesize, synthesize_cdfg
from repro.errors import EquivalenceError, HLSError, SimulationError
from repro.lang import compile_source
from repro.rtl import emit_verilog
from repro.scheduling import ResourceConstraints, TypedFUModel
from repro.sim import (
    BehavioralSimulator,
    RTLSimulator,
    check_equivalence,
    default_vectors,
)
from repro.workloads import (
    SQRT_SOURCE,
    diffeq_cdfg,
    diffeq_inputs,
    ewf_cdfg,
    fir_source,
    sqrt_cdfg,
)


class TestRTLSimulator:
    def test_sqrt_ten_cycles(self):
        """The optimized 2-FU sqrt runs in exactly the paper's 10
        control steps (2 + 4x2)."""
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        simulator = RTLSimulator(design)
        out = simulator.run({"X": 0.5})
        assert simulator.cycles == 10
        assert out["Y"] == pytest.approx(math.sqrt(0.5), abs=1e-3)

    def test_sqrt_serial_23_cycles(self):
        """Unoptimized, one FU, bare moves costing a step: 23 cycles."""
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 1}),
                optimize_ir=False,
            ),
        )
        simulator = RTLSimulator(design)
        simulator.run({"X": 0.5})
        assert simulator.cycles == 23

    def test_missing_input(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        with pytest.raises(SimulationError):
            RTLSimulator(design).run({})

    def test_runaway_guard(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        with pytest.raises(SimulationError):
            RTLSimulator(design, max_cycles=3).run({"X": 0.5})

    def test_memories_roundtrip(self):
        design = synthesize(fir_source(4))
        memories = {
            "c": [0.5, 0.25, 0.125, 0.0625],
            "s": [0.0, 1.0, 2.0, 4.0],
        }
        behavioral = BehavioralSimulator(design.cdfg).run(
            {"x": 1.0}, memories
        )
        simulator = RTLSimulator(design)
        rtl = simulator.run({"x": 1.0}, memories)
        assert behavioral == rtl
        # s[0] was overwritten with x in both worlds.
        assert simulator.memory_contents("s")[0] == 1.0


class TestEquivalence:
    def test_sqrt_equivalent(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        report = check_equivalence(design)
        assert report.equivalent
        assert report.vectors == 8

    def test_default_vectors_cover_corners(self):
        cdfg = sqrt_cdfg()
        vectors = default_vectors(cdfg, count=8)
        xs = [v["X"] for v in vectors]
        assert 0 in xs and 1 in xs
        assert len(vectors) == 8
        # Deterministic.
        assert default_vectors(cdfg, count=8) == vectors

    def test_mismatch_detection(self):
        """Corrupting the design makes the checker raise."""
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        # Swap a transition to skip the loop entirely.
        for state in design.fsm.states:
            if not state.transition.unconditional:
                state.transition.if_false = None  # exit immediately
        with pytest.raises(EquivalenceError):
            check_equivalence(design, vectors=[{"X": 0.5}])

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_sqrt_grid_schedulers(self, scheduler):
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                scheduler=scheduler,
                constraints=ResourceConstraints({"fu": 2}),
            ),
        )
        report = check_equivalence(
            design, vectors=[{"X": x} for x in (0.0625, 0.5, 1.0)]
        )
        assert report.equivalent

    @pytest.mark.parametrize("allocator", sorted(ALLOCATORS))
    def test_sqrt_grid_allocators(self, allocator):
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                allocator=allocator,
                constraints=ResourceConstraints({"fu": 2}),
            ),
        )
        report = check_equivalence(
            design, vectors=[{"X": x} for x in (0.0625, 0.5, 1.0)]
        )
        assert report.equivalent

    @pytest.mark.parametrize("scheduler", ["asap", "list", "ysc"])
    @pytest.mark.parametrize("allocator", sorted(ALLOCATORS))
    def test_diffeq_grid(self, scheduler, allocator):
        design = synthesize_cdfg(
            diffeq_cdfg(),
            SynthesisOptions(
                scheduler=scheduler,
                allocator=allocator,
                model=TypedFUModel(),
                constraints=ResourceConstraints(
                    {"mul": 2, "add": 1, "cmp": 1}
                ),
            ),
        )
        report = check_equivalence(
            design, vectors=[diffeq_inputs(k) for k in (1, 3)]
        )
        assert report.equivalent

    def test_ewf_equivalent(self):
        design = synthesize_cdfg(
            ewf_cdfg(),
            SynthesisOptions(
                model=TypedFUModel(delays={"mul": 2}),
                constraints=ResourceConstraints({"add": 2, "mul": 1}),
            ),
        )
        report = check_equivalence(design)
        assert report.equivalent

    def test_unrolled_sqrt_equivalent(self):
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 2}),
                unroll=True,
            ),
        )
        report = check_equivalence(design)
        assert report.equivalent
        # No loop left: straight-line FSM, every transition forward.
        assert all(
            s.transition.unconditional for s in design.fsm.states
        )

    def test_branches_equivalent(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input b: int<8>; output c: int<8>);
begin
  if a > b then
    c := a - b;
  else
    c := b - a;
  if c > 10 then c := 10;
end
""")
        design = synthesize_cdfg(
            cdfg,
            SynthesisOptions(constraints=ResourceConstraints({"fu": 1})),
        )
        vectors = [
            {"a": 1, "b": 2},
            {"a": 9, "b": -8},
            {"a": -5, "b": -5},
            {"a": 127, "b": -128},
        ]
        assert check_equivalence(design, vectors=vectors).equivalent


class TestEngine:
    def test_unknown_scheduler(self):
        with pytest.raises(HLSError):
            synthesize(SQRT_SOURCE, scheduler="magic")

    def test_unknown_allocator(self):
        with pytest.raises(HLSError):
            synthesize(SQRT_SOURCE, allocator="magic")

    def test_options_and_kwargs_exclusive(self):
        with pytest.raises(HLSError):
            synthesize(
                SQRT_SOURCE,
                options=SynthesisOptions(),
                scheduler="list",
            )

    def test_report(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        text = design.report()
        assert "scheduler=list" in text
        assert "FUs" in text

    def test_design_counts(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        assert design.fu_count >= 2
        assert design.register_count >= 3
        assert design.state_count == 4


class TestVerilog:
    def test_module_structure(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        text = emit_verilog(design)
        assert "module sqrt (" in text
        assert "input  wire [23:0] in_X" in text
        assert "output wire [23:0] out_Y" in text
        assert "endmodule" in text

    def test_one_localparam_per_state(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        text = emit_verilog(design)
        for state in design.fsm.states:
            assert f"localparam S{state.id} =" in text

    def test_registers_declared(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        text = emit_verilog(design)
        assert "reg [23:0] r_Y;" in text
        assert "reg [1:0] r_I;" in text  # the narrowed counter

    def test_memories_declared(self):
        design = synthesize(fir_source(4))
        text = emit_verilog(design)
        assert "mem_c [0:3]" in text
        assert "mem_s [0:3]" in text

    def test_fixed_point_scaling_present(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        text = emit_verilog(design)
        # Division re-scales by the fraction width (16).
        assert "<<< 16" in text

    def test_balanced_begin_end(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        text = emit_verilog(design)
        assert text.count("begin") == text.count("end") - text.count(
            "endmodule"
        ) - text.count("endcase")
