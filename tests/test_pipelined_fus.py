"""Tests for pipelined functional units (occupancy < latency)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import CliqueAllocator, LeftEdgeRegisterAllocator
from repro.core import SynthesisOptions, synthesize_cdfg
from repro.pipeline import find_best_pipeline, minimum_initiation_interval
from repro.scheduling import (
    ASAPScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.sim import check_equivalence, default_vectors
from repro.workloads import (
    RandomDFGSpec,
    ewf_cdfg,
    fir_block_cdfg,
    random_dfg,
)

PIPELINED = TypedFUModel(delays={"mul": 3}, pipelined_classes={"mul"})
BLOCKING = TypedFUModel(delays={"mul": 3})


def fir_problem(model, muls=1):
    cdfg = fir_block_cdfg(4)
    return SchedulingProblem.from_block(
        cdfg.blocks()[0], model,
        ResourceConstraints({"mul": muls, "add": 1}),
    )


class TestPipelinedScheduling:
    def test_occupancy_defaults_to_delay(self):
        problem = fir_problem(BLOCKING)
        mul_id = next(
            op_id for op_id in problem.compute_op_ids()
            if problem.op_class(op_id) == "mul"
        )
        assert problem.occupancy(mul_id) == problem.delay(mul_id) == 3

    def test_pipelined_occupancy_is_one(self):
        problem = fir_problem(PIPELINED)
        mul_id = next(
            op_id for op_id in problem.compute_op_ids()
            if problem.op_class(op_id) == "mul"
        )
        assert problem.delay(mul_id) == 3
        assert problem.occupancy(mul_id) == 1

    def test_pipelined_multiplier_shortens_schedule(self):
        """One pipelined multiplier accepts a multiply every cycle, so
        four independent multiplies start back to back instead of
        serializing for 3 cycles each."""
        blocking = ListScheduler(fir_problem(BLOCKING)).schedule()
        blocking.validate()
        pipelined = ListScheduler(fir_problem(PIPELINED)).schedule()
        pipelined.validate()
        assert pipelined.length < blocking.length
        # Back-to-back issue on the single multiplier.
        problem = pipelined.problem
        mul_starts = sorted(
            pipelined.start[op_id]
            for op_id in problem.compute_op_ids()
            if problem.op_class(op_id) == "mul"
        )
        assert mul_starts == [0, 1, 2, 3]

    def test_latency_still_respected(self):
        """Results still take the full delay: no consumer starts before
        its multiply completes."""
        schedule = ListScheduler(fir_problem(PIPELINED)).schedule()
        problem = schedule.problem
        for u, v in problem.graph.edges:
            if problem.op_class(u) == "mul" and problem.delay(v) > 0:
                assert schedule.start[v] >= schedule.start[u] + 3

    def test_checker_counts_occupancy_not_latency(self):
        schedule = ListScheduler(fir_problem(PIPELINED)).schedule()
        schedule.validate()  # 4 in-flight muls on 1 unit are legal
        assert schedule.resource_usage()["mul"] == 1

    def test_asap_handles_pipelined_units(self):
        schedule = ASAPScheduler(fir_problem(PIPELINED)).schedule()
        schedule.validate()

    def test_allocators_share_pipelined_units(self):
        schedule = ListScheduler(fir_problem(PIPELINED)).schedule()
        for factory in (CliqueAllocator, LeftEdgeRegisterAllocator):
            allocation = factory(schedule).allocate()
            allocation.validate()
            assert allocation.fu_count("mul") == 1

    def test_modulo_scheduling_with_pipelined_units(self):
        """A pipelined multiplier lowers the MII: 4 muls x occupancy 1
        on one unit bounds II at 4 instead of 12."""
        problem = fir_problem(PIPELINED)
        assert minimum_initiation_interval(problem) == 4
        schedule = find_best_pipeline(problem)
        schedule.validate()
        assert schedule.initiation_interval == 4

    def test_end_to_end_equivalence_with_pipelined_units(self):
        design = synthesize_cdfg(
            ewf_cdfg(),
            SynthesisOptions(
                model=TypedFUModel(delays={"mul": 2},
                                   pipelined_classes={"mul"}),
                constraints=ResourceConstraints({"add": 2, "mul": 1}),
            ),
        )
        assert check_equivalence(design).equivalent

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(1, 10_000))
    def test_random_dfgs_with_pipelined_units(self, seed):
        cdfg = random_dfg(RandomDFGSpec(ops=14, seed=seed, mul_weight=3))
        design = synthesize_cdfg(
            cdfg,
            SynthesisOptions(
                model=TypedFUModel(delays={"mul": 3},
                                   pipelined_classes={"mul"}),
                constraints=ResourceConstraints({"add": 1, "mul": 1}),
            ),
        )
        vectors = default_vectors(design.cdfg, count=3, seed=seed)
        assert check_equivalence(design, vectors=vectors).equivalent

    def test_pipelined_never_slower(self):
        blocking = ListScheduler(fir_problem(BLOCKING)).schedule()
        pipelined = ListScheduler(fir_problem(PIPELINED)).schedule()
        assert pipelined.length <= blocking.length
