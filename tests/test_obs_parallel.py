"""Observability across DSE worker processes.

Parallel exploration ships each worker's spans and metrics snapshot
back to the parent, which merges them in input order.  The contract
(see ``docs/observability.md``): the parent trace contains one
``dse.point`` child span per evaluated design point under the open
``dse.sweep`` span, and merged per-point counter totals equal a
serial sweep's exactly.
"""


from repro import obs
from repro.core import clear_synthesis_cache
from repro.explore import explore_fu_range
from repro.workloads import SQRT_SOURCE

LIMITS = [1, 2, 3]

#: Counters incremented once per design point (or per stage run inside
#: one).  Only these are worker-location independent: compile/optimize
#: run once per *worker process* rather than once per sweep, and the
#: synthesis cache is parent-only, so their counters legitimately
#: differ between serial and parallel runs.
PER_POINT_COUNTERS = (
    "dse.points.evaluated",
    "scheduler.invocations{scheduler=list}",
    "allocator.invocations{allocator=left-edge}",
)


def _sweep_counters(n_jobs):
    clear_synthesis_cache()
    obs.reset_metrics()
    explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=n_jobs,
                     use_cache=False)
    return obs.metrics().counters()


def _point_spans(records):
    by_index = {r.index: r for r in records}
    sweeps = [r for r in records if r.name == "dse.sweep"]
    points = [r for r in records if r.name == "dse.point"]
    return by_index, sweeps, points


class TestParallelTraceMerge:
    def test_one_point_span_per_design_point(self):
        with obs.tracing():
            explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                             use_cache=False)
        by_index, sweeps, points = _point_spans(obs.tracer().records())
        assert len(sweeps) == 1
        assert len(points) == len(LIMITS)
        (sweep,) = sweeps
        for point in points:
            assert point.parent == sweep.index
            assert point.depth == sweep.depth + 1

    def test_point_spans_arrive_in_limit_order(self):
        with obs.tracing():
            explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                             use_cache=False)
        _, _, points = _point_spans(obs.tracer().records())
        assert [p.attrs["limit"] for p in points] == LIMITS

    def test_worker_stage_spans_nest_under_their_point(self):
        with obs.tracing():
            explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                             use_cache=False)
        records = obs.tracer().records()
        by_index, _, points = _point_spans(records)
        point_indices = {p.index for p in points}
        schedules = [r for r in records if r.name == "schedule"]
        # two blocks per sqrt synthesis, one synthesis per point
        assert len(schedules) == 2 * len(LIMITS)
        for span in schedules:
            ancestor = span
            while ancestor.parent is not None:
                ancestor = by_index[ancestor.parent]
                if ancestor.index in point_indices:
                    break
            assert ancestor.index in point_indices

    def test_merge_is_deterministic_across_runs(self):
        with obs.tracing():
            explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                             use_cache=False)
        first = [(r.name, r.parent, r.depth)
                 for r in obs.tracer().records()]
        obs.reset_tracing()
        with obs.tracing():
            explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                             use_cache=False)
        second = [(r.name, r.parent, r.depth)
                  for r in obs.tracer().records()]
        assert first == second


class TestParallelMetricsMerge:
    def test_per_point_counters_match_serial(self):
        serial = _sweep_counters(n_jobs=1)
        parallel = _sweep_counters(n_jobs=2)
        for key in PER_POINT_COUNTERS:
            assert parallel[key] == serial[key], key

    def test_evaluated_counter_equals_point_count(self):
        counters = _sweep_counters(n_jobs=2)
        assert counters["dse.points.evaluated"] == len(LIMITS)

    def test_scheduler_latency_histograms_merge(self):
        clear_synthesis_cache()
        obs.reset_metrics()
        explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                         use_cache=False)
        hist = obs.metrics().histograms()[
            "scheduler.latency_ms{scheduler=list}"
        ]
        # two blocks per point, every worker observation merged home
        assert hist.count == 2 * len(LIMITS)
        assert sum(hist.counts) == hist.count
        assert hist.total > 0.0

    def test_report_telemetry_includes_worker_counters(self):
        clear_synthesis_cache()
        result = explore_fu_range(SQRT_SOURCE, LIMITS, n_jobs=2,
                                  use_cache=False, report=True)
        counters = result.telemetry["counters"]
        assert counters["dse.points.evaluated"] == len(LIMITS)
        assert (counters["scheduler.invocations{scheduler=list}"]
                == 2 * len(LIMITS))
