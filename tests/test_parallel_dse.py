"""Parallel exploration must be a pure speedup: identical results.

The contract of ``n_jobs`` on :func:`repro.explore.explore_fu_range`
and :func:`repro.explore.search_for_latency` is that fanning points
out over worker processes changes wall-clock time and nothing else —
the :class:`DesignPoint` tables (constraints, area, cycles, clock)
match the serial sweep exactly, in the same order.
"""

import pytest

from repro.core import clear_synthesis_cache
from repro.explore import (
    ParallelExplorer,
    explore_fu_range,
    search_for_latency,
)
from repro.explore.dse import _PointBuilder
from repro.lang import compile_source
from repro.workloads.diffeq import DIFFEQ_SOURCE
from repro.workloads.sqrt import SQRT_SOURCE

LIMITS = [1, 2, 3]


def rows(points):
    return [
        (str(p.constraints), p.area, p.cycles, p.clock_ns)
        for p in points
    ]


@pytest.fixture(autouse=True)
def _cold_cache():
    """Each run below must do its own work, not replay another's."""
    clear_synthesis_cache()
    yield
    clear_synthesis_cache()


@pytest.mark.parametrize("source", [SQRT_SOURCE, DIFFEQ_SOURCE],
                         ids=["sqrt", "diffeq"])
@pytest.mark.parametrize("n_jobs", [1, 4])
def test_sweep_matches_serial(source, n_jobs):
    serial = explore_fu_range(source, LIMITS)
    clear_synthesis_cache()
    jobbed = explore_fu_range(source, LIMITS, n_jobs=n_jobs)
    assert rows(jobbed.points) == rows(serial.points)
    assert rows(jobbed.pareto) == rows(serial.pareto)


@pytest.mark.parametrize("n_jobs", [1, 4])
def test_search_matches_serial(n_jobs):
    serial = search_for_latency(SQRT_SOURCE, 10, max_units=8)
    clear_synthesis_cache()
    jobbed = search_for_latency(SQRT_SOURCE, 10, max_units=8,
                                n_jobs=n_jobs)
    assert rows([jobbed]) == rows([serial])
    # the known answer for sqrt: two universal FUs reach 10 cycles
    assert str(jobbed.constraints) == "fu=2"


def test_search_infeasible_target_parallel():
    assert search_for_latency(SQRT_SOURCE, 1, max_units=4,
                              n_jobs=4) is None


def test_factory_source_falls_back_to_serial():
    """A closure factory cannot be pickled; the pool must silently
    degrade to the serial path and still produce correct points."""
    factory = lambda: compile_source(SQRT_SOURCE)  # noqa: E731
    serial = explore_fu_range(factory, LIMITS)
    jobbed = explore_fu_range(factory, LIMITS, n_jobs=4)
    assert rows(jobbed.points) == rows(serial.points)


def test_single_worker_explorer_never_spawns():
    builder = _PointBuilder(SQRT_SOURCE, "fu", None, None)
    explorer = ParallelExplorer(max_workers=1)
    points, failures = explorer.build_points(builder, LIMITS)
    assert failures == []
    assert rows(points) == rows(explore_fu_range(SQRT_SOURCE,
                                                 LIMITS).points)


@pytest.mark.parametrize("bad", [0, -1, -8])
def test_worker_count_must_be_positive(bad):
    """Zero/negative used to silently mean one-per-CPU."""
    with pytest.raises(ValueError, match="max_workers"):
        ParallelExplorer(max_workers=bad)
