"""Stage contracts: clean designs pass, hand-corrupted designs report
the expected violation kinds, and the engine hook raises.

The corruption tests are the contract checkers' own differential
counterpart: each one breaks exactly one invariant *after* synthesis
(so the pipeline's raising validators never see it) and asserts the
matching violation kind appears.
"""

import pytest

from repro.core import SynthesisOptions, synthesize, synthesize_cdfg
from repro.core.engine import SCHEDULERS
from repro.allocation.lifetimes import compute_lifetimes
from repro.controller.fsm import ControlState, Transition
from repro.datapath.netlist import build_netlist
from repro.errors import VerificationError
from repro.scheduling import ResourceConstraints
from repro.scheduling import ListScheduler
from repro.verify import (
    STAGE_ORDER,
    check_allocation,
    check_binding,
    check_controller,
    check_netlist,
    check_schedule,
    verify_design,
)
from repro.workloads import (
    DIFFEQ_SOURCE,
    SQRT_SOURCE,
    ar_lattice_cdfg,
    diffeq_cdfg,
    ewf_cdfg,
    fig3_cdfg,
    fig5_cdfg,
    fig6_cdfg,
    fir_block_cdfg,
    fir_cdfg,
    sqrt_cdfg,
)


def _sqrt_design(fu: int = 2):
    return synthesize(
        SQRT_SOURCE,
        options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": fu})
        ),
    )


WORKLOAD_FACTORIES = {
    "sqrt": sqrt_cdfg,
    "diffeq": diffeq_cdfg,
    "fig3": fig3_cdfg,
    "fig5": fig5_cdfg,
    "fig6": fig6_cdfg,
    "ewf": ewf_cdfg,
    "fir": lambda: fir_cdfg(4),
    "fir_block": lambda: fir_block_cdfg(4),
    "ar_lattice": lambda: ar_lattice_cdfg(2),
}


class TestCleanDesigns:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_FACTORIES))
    def test_every_seed_workload_is_violation_free(self, name):
        design = synthesize_cdfg(WORKLOAD_FACTORIES[name]())
        report = verify_design(design)
        assert report.ok, report.render()
        assert report.stages_checked == STAGE_ORDER

    @pytest.mark.parametrize("fu", [1, 2, 3])
    def test_constrained_sqrt_is_violation_free(self, fu):
        report = verify_design(_sqrt_design(fu))
        assert report.ok, report.render()

    def test_diffeq_source_is_violation_free(self):
        report = verify_design(synthesize(DIFFEQ_SOURCE))
        assert report.ok, report.render()

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown contract stages"):
            verify_design(_sqrt_design(), stages=["rtl"])

    def test_stage_subset_runs_only_those(self):
        report = verify_design(_sqrt_design(),
                               stages=["scheduling", "binding"])
        assert report.ok
        assert report.stages_checked == ("scheduling", "binding")


class TestScheduleContract:
    def test_unscheduled_op(self):
        design = _sqrt_design()
        schedule = next(iter(design.schedules.values()))
        schedule.start.pop(next(iter(schedule.start)))
        kinds = {v.kind for v in check_schedule(design)}
        assert "unscheduled-op" in kinds

    def test_negative_step(self):
        design = _sqrt_design()
        schedule = next(iter(design.schedules.values()))
        op_id = next(iter(schedule.start))
        schedule.start[op_id] = -1
        kinds = {v.kind for v in check_schedule(design)}
        assert "negative-step" in kinds

    def test_precedence(self):
        design = _sqrt_design()
        # Find an edge whose source starts late enough that moving the
        # sink before it stays non-negative.
        for schedule in design.schedules.values():
            for u, v in schedule.problem.graph.edges:
                if schedule.start[u] >= 1:
                    schedule.start[v] = schedule.start[u] - 1
                    violations = check_schedule(design)
                    assert "precedence" in {x.kind for x in violations}
                    return
        pytest.fail("no suitable edge found")

    def test_resource_oversubscription(self):
        design = _sqrt_design(fu=1)
        # Pile every op of one block onto step 0: with one FU this
        # oversubscribes (and breaks precedence, which is fine).
        schedule = max(design.schedules.values(),
                       key=lambda s: len(s.start))
        for op_id in schedule.start:
            schedule.start[op_id] = 0
        kinds = {v.kind for v in check_schedule(design)}
        assert "resource-oversubscribed" in kinds


class TestAllocationContract:
    def test_unassigned_op(self):
        design = _sqrt_design()
        for allocation in design.allocations.values():
            if allocation.fu_map:
                allocation.fu_map.pop(next(iter(allocation.fu_map)))
                break
        kinds = {v.kind for v in check_allocation(design)}
        assert "unassigned-op" in kinds

    def test_fu_double_booked(self):
        design = _sqrt_design(fu=2)
        for allocation in design.allocations.values():
            schedule = allocation.schedule
            by_step = {}
            for op_id, fu in allocation.fu_map.items():
                step = schedule.start[op_id]
                if step in by_step and by_step[step][1] != fu:
                    allocation.fu_map[op_id] = by_step[step][1]
                    violations = check_allocation(design)
                    kinds = {v.kind for v in violations}
                    assert "fu-double-booked" in kinds
                    return
                by_step[step] = (op_id, fu)
        pytest.fail("no two same-step ops on distinct FUs found")

    def test_register_missing(self):
        design = _sqrt_design(fu=1)
        for allocation in design.allocations.values():
            lifetimes = compute_lifetimes(allocation.schedule)
            for lifetime in lifetimes:
                if lifetime.value.id in allocation.register_map:
                    allocation.register_map.pop(lifetime.value.id)
                    kinds = {v.kind for v in check_allocation(design)}
                    assert "register-missing" in kinds
                    return
        pytest.fail("no registered lifetime found")

    def test_register_overlap(self):
        design = _sqrt_design(fu=1)
        for allocation in design.allocations.values():
            lifetimes = compute_lifetimes(allocation.schedule)
            for i, first in enumerate(lifetimes):
                for second in lifetimes[i + 1:]:
                    r1 = allocation.register_map.get(first.value.id)
                    r2 = allocation.register_map.get(second.value.id)
                    if (first.conflicts_with(second)
                            and r1 is not None and r2 is not None
                            and r1 != r2):
                        allocation.register_map[second.value.id] = r1
                        kinds = {
                            v.kind for v in check_allocation(design)
                        }
                        assert "register-overlap" in kinds
                        return
        pytest.fail("no conflicting lifetime pair found")


class TestBindingContract:
    def test_unbound_fu(self):
        design = _sqrt_design()
        fu = next(iter(design.binding.components))
        design.binding.components.pop(fu)
        kinds = {v.kind for v in check_binding(design)}
        assert "unbound-fu" in kinds

    def test_width_underflow(self):
        design = _sqrt_design()
        fu = next(iter(design.binding.widths))
        design.binding.widths[fu] = 1
        kinds = {v.kind for v in check_binding(design)}
        assert "width-underflow" in kinds

    def test_missing_binding(self):
        design = _sqrt_design()
        design.binding = None
        kinds = {v.kind for v in check_binding(design)}
        assert kinds == {"missing-binding"}


class TestControllerContract:
    def test_dangling_target(self):
        design = _sqrt_design()
        design.fsm.states[0].transition = Transition(999)
        kinds = {v.kind for v in check_controller(design)}
        assert "dangling-target" in kinds

    def test_branch_without_condition(self):
        design = _sqrt_design()
        state = design.fsm.states[0]
        old = state.transition
        state.transition = Transition(old.if_true, 0, None)
        kinds = {v.kind for v in check_controller(design)}
        assert "branch-without-condition" in kinds

    def test_unreachable_state(self):
        design = _sqrt_design()
        fsm = design.fsm
        orphan = ControlState(len(fsm.states), fsm.states[0].plan, 0)
        fsm.states.append(orphan)
        kinds = {v.kind for v in check_controller(design)}
        assert "unreachable-state" in kinds

    def test_dead_state(self):
        design = _sqrt_design()
        fsm = design.fsm
        # An unconditional self-loop can never reach the halt exit.
        fsm.states[fsm.entry].transition = Transition(fsm.entry)
        kinds = {v.kind for v in check_controller(design)}
        assert "dead-state" in kinds

    def test_step_out_of_range(self):
        design = _sqrt_design()
        design.fsm.states[0].step = 999
        kinds = {v.kind for v in check_controller(design)}
        assert "step-out-of-range" in kinds

    def test_missing_fsm(self):
        design = _sqrt_design()
        design.fsm = None
        kinds = {v.kind for v in check_controller(design)}
        assert kinds == {"missing-fsm"}


class TestNetlistContract:
    def test_clean_netlist(self):
        assert check_netlist(_sqrt_design(fu=1)) == []

    def test_dangling_port(self):
        design = _sqrt_design(fu=1)
        netlist = build_netlist(design)
        netlist.components.pop(next(iter(netlist.components)))
        kinds = {v.kind for v in check_netlist(design, netlist)}
        assert "dangling-port" in kinds

    def test_degenerate_mux(self):
        design = _sqrt_design(fu=1)
        netlist = build_netlist(design)
        muxes = netlist.components_of_kind("mux")
        assert muxes, "1-FU sqrt must share inputs through muxes"
        victim = muxes[0]
        netlist.nets = [
            net for net in netlist.nets
            if not any(
                sink.component is victim and sink.port.startswith("i")
                for sink in net.sinks
            )
        ]
        kinds = {v.kind for v in check_netlist(design, netlist)}
        assert "degenerate-mux" in kinds


class TestEngineHook:
    def test_verify_option_passes_on_clean_design(self):
        design = synthesize(
            SQRT_SOURCE, options=SynthesisOptions(verify=True)
        )
        assert any(line.startswith("verify[") for line in design.log)

    def test_verify_option_raises_on_broken_scheduler(self, monkeypatch):
        """A scheduler that lies (and a silenced validator) must be
        caught by the contract hook, not slip through to RTL."""
        from repro.scheduling.base import Schedule

        class LyingScheduler(ListScheduler):
            def schedule(self):
                result = super().schedule()
                for op_id in result.start:
                    result.start[op_id] = 0
                return result

        monkeypatch.setitem(SCHEDULERS, "lying", LyingScheduler)
        monkeypatch.setattr(Schedule, "validate", lambda self: None)
        with pytest.raises(VerificationError) as excinfo:
            synthesize(
                SQRT_SOURCE,
                options=SynthesisOptions(scheduler="lying",
                                         verify=True),
            )
        kinds = {v.kind for v in excinfo.value.violations}
        assert "precedence" in kinds

    def test_verify_flag_in_cache_key(self):
        plain = SynthesisOptions()
        verifying = SynthesisOptions(verify=True)
        assert plain.cache_key() != verifying.cache_key()
