"""End-to-end integration: small behavioral programs through the whole
flow, each verified by behavioral/RTL co-simulation.

These stress the region lowering + FSM synthesis combinations the unit
tests cover in isolation: branches inside loops, loops after loops,
nested loops, multiple outputs, constant generators, early data
dependencies across blocks.
"""

import pytest

from repro.core import SynthesisOptions, synthesize
from repro.scheduling import ResourceConstraints
from repro.sim import BehavioralSimulator, RTLSimulator, check_equivalence

GCD = """
-- Euclid by repeated subtraction; branch nested inside a while loop.
procedure gcd(input a0: uint<8>; input b0: uint<8>; output g: uint<8>);
var a, b: uint<8>;
begin
  a := a0;
  b := b0;
  while a /= b do
  begin
    if a > b then
      a := a - b;
    else
      b := b - a;
  end;
  g := a;
end
"""

POPCOUNT = """
-- Count set bits of an 8-bit value.
procedure popcount(input x0: uint<8>; output n: uint<4>);
var x: uint<8>;
    i: uint<4>;
begin
  x := x0;
  n := 0;
  for i := 0 to 7 do
  begin
    n := n + (x & 1);
    x := x >> 1;
  end;
end
"""

CLIP = """
-- Saturate a value into [lo, hi]; two sequential branches.
procedure clip(input v: int<16>; input lo: int<16>; input hi: int<16>;
               output o: int<16>);
begin
  o := v;
  if o < lo then o := lo;
  if o > hi then o := hi;
end
"""

HORNER = """
-- Fixed-point cubic by Horner's rule (multiple cross-block temps).
procedure horner(input x: fixed<24,12>; output y: fixed<24,12>);
var acc: fixed<24,12>;
begin
  acc := 0.5;
  acc := acc * x + 0.25;
  acc := acc * x + 0.125;
  acc := acc * x + 1.0;
  y := acc;
end
"""

CONST_GEN = """
-- No inputs at all: a pure constant generator.
procedure five(output v: int<8>);
begin
  v := 2 + 3;
end
"""

TWO_LOOPS = """
-- Sequential loops sharing state.
procedure twoloops(input a: int<8>; output s: int<16>);
var i: uint<4>;
begin
  s := 0;
  for i := 0 to 4 do s := s + a;
  for i := 0 to 2 do s := s * 2;
end
"""

NESTED = """
-- Nested counted loops.
procedure nested(input a: int<8>; output s: int<16>);
var i, j: uint<3>;
begin
  s := 0;
  for i := 0 to 3 do
    for j := 0 to 2 do
      s := s + a;
end
"""

SUM_MEM = """
-- Reduce a memory with a data-dependent early exit.
procedure summem(input n: uint<3>; output s: int<16>);
var buf: int<16>[8];
    i: uint<4>;
begin
  for i := 0 to 7 do buf[i] := i + 1;
  s := 0;
  i := 0;
  while i < n do
  begin
    s := s + buf[i];
    i := i + 1;
  end;
end
"""

PROGRAMS = {
    "gcd": (GCD, [
        {"a0": 12, "b0": 18},
        {"a0": 7, "b0": 13},
        {"a0": 100, "b0": 75},
        {"a0": 5, "b0": 5},
    ]),
    "popcount": (POPCOUNT, [
        {"x0": 0}, {"x0": 255}, {"x0": 0b10110010}, {"x0": 1},
    ]),
    "clip": (CLIP, [
        {"v": 50, "lo": 0, "hi": 100},
        {"v": -10, "lo": 0, "hi": 100},
        {"v": 500, "lo": 0, "hi": 100},
    ]),
    "horner": (HORNER, [
        {"x": 0.0}, {"x": 0.5}, {"x": -0.5}, {"x": 1.5},
    ]),
    "five": (CONST_GEN, [{}]),
    "twoloops": (TWO_LOOPS, [{"a": 3}, {"a": -2}]),
    "nested": (NESTED, [{"a": 4}]),
    "summem": (SUM_MEM, [{"n": 0}, {"n": 3}, {"n": 7}]),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_equivalence(name):
    source, vectors = PROGRAMS[name]
    design = synthesize(
        source, constraints=ResourceConstraints({"fu": 2})
    )
    report = check_equivalence(design, vectors=vectors)
    assert report.equivalent


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_equivalence_serial(name):
    """Same programs, fully serialized (1 FU) and unoptimized."""
    source, vectors = PROGRAMS[name]
    design = synthesize(
        source,
        options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 1}),
            optimize_ir=False,
        ),
    )
    report = check_equivalence(design, vectors=vectors)
    assert report.equivalent


def test_gcd_reference_values():
    import math

    design = synthesize(GCD, constraints=ResourceConstraints({"fu": 1}))
    for a, b in ((12, 18), (7, 13), (100, 75), (36, 24)):
        out = RTLSimulator(design).run({"a0": a, "b0": b})
        assert out["g"] == math.gcd(a, b)


def test_popcount_reference_values():
    design = synthesize(POPCOUNT,
                        constraints=ResourceConstraints({"fu": 2}))
    for x in (0, 1, 3, 255, 0b1010_1010):
        out = RTLSimulator(design).run({"x0": x})
        assert out["n"] == bin(x).count("1")


def test_unrolled_popcount_matches():
    design = synthesize(
        POPCOUNT,
        options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}),
            unroll=True,
        ),
    )
    for x in (0, 77, 255):
        out = RTLSimulator(design).run({"x0": x})
        assert out["n"] == bin(x).count("1")
    # Straight-line controller after unrolling.
    assert all(s.transition.unconditional for s in design.fsm.states)


def test_cycle_counts_scale_with_trip_count():
    design = synthesize(SUM_MEM,
                        constraints=ResourceConstraints({"fu": 1}))
    cycles = []
    for n in (0, 3, 7):
        simulator = RTLSimulator(design)
        simulator.run({"n": n})
        cycles.append(simulator.cycles)
    assert cycles[0] < cycles[1] < cycles[2]


def test_behavior_matches_python_reference_twoloops():
    design = synthesize(TWO_LOOPS,
                        constraints=ResourceConstraints({"fu": 2}))
    behavioral = BehavioralSimulator(design.cdfg).run({"a": 3})
    assert behavioral["s"] == (3 * 5) * 2 ** 3
