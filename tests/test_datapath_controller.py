"""Tests for datapath planning, FSM synthesis, encoding and microcode."""

import pytest

from repro.controller import MicrocodeGenerator, encode_states
from repro.core import SynthesisOptions, synthesize, synthesize_cdfg
from repro.errors import ControllerError
from repro.lang import compile_source
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE, diffeq_cdfg


def sqrt_design(fu=2):
    return synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": fu})
    )


class TestBlockPlan:
    def test_every_step_listed(self):
        design = sqrt_design()
        for plan in design.plans.values():
            assert len(plan.starts) == plan.schedule.length
            listed = [op for step in plan.starts for op in step]
            assert sorted(o.id for o in listed) == sorted(
                o.id for o in plan.block.ops
            )

    def test_storage_covers_registered_values(self):
        from repro.allocation import compute_lifetimes

        design = sqrt_design()
        for plan in design.plans.values():
            for lifetime in compute_lifetimes(plan.schedule):
                assert lifetime.value.id in plan.storage_of

    def test_var_write_latches_exist(self):
        design = sqrt_design()
        body_plan = design.plans[
            design.cdfg.loops()[0].test_block.id
        ]
        targets = {latch.target for latch in body_plan.latches}
        assert ("var", "Y") in targets
        assert ("var", "I") in targets

    def test_hazard_deferred_write(self):
        """A variable read after its new value is computed gets a
        deferred write-back, not an early clobber."""
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>; output c: int<8>);
var t: int<8>;
begin
  t := a + 1;
  repeat
    b := t * t;          -- reads old t late (multiplier busy)
    t := t + 3;          -- new t computed early
    c := c + 1;
  until c > 2;
end
""")
        design = synthesize_cdfg(
            cdfg,
            SynthesisOptions(
                constraints=ResourceConstraints({"fu": 1}),
                optimize_ir=False,
            ),
        )
        # Correctness is what matters: co-simulation must agree.
        from repro.sim import check_equivalence

        report = check_equivalence(design, vectors=[{"a": 3}])
        assert report.equivalent


class TestFSM:
    def test_state_count_matches_schedule_lengths(self):
        design = sqrt_design()
        expected = sum(s.length for s in design.schedules.values())
        assert design.fsm.state_count == expected

    def test_loop_back_edge(self):
        design = sqrt_design()
        fsm = design.fsm
        back_edges = [
            s for s in fsm.states
            if not s.transition.unconditional
        ]
        assert len(back_edges) == 1
        branch = back_edges[0].transition
        # exit_on_true: true -> halt (None), false -> body entry.
        assert branch.if_true is None
        assert branch.if_false is not None

    def test_if_fork_and_join(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a > 0 then b := a + 1; else b := a - 1;
  b := b * 2;
end
""")
        design = synthesize_cdfg(cdfg, SynthesisOptions(
            constraints=ResourceConstraints({"fu": 1})))
        fsm = design.fsm
        forks = [s for s in fsm.states if not s.transition.unconditional]
        assert len(forks) == 1
        fork = forks[0].transition
        assert fork.if_true != fork.if_false

    def test_while_loop_shape(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  while b < a do b := b + 1;
end
""")
        design = synthesize_cdfg(cdfg, SynthesisOptions(
            constraints=ResourceConstraints({"fu": 1})))
        fsm = design.fsm
        conditional = [
            s for s in fsm.states if not s.transition.unconditional
        ]
        assert len(conditional) == 1

    def test_dot_output(self):
        design = sqrt_design()
        dot = design.fsm.dot()
        assert "digraph fsm" in dot
        assert "halt" in dot

    def test_validate_rejects_bad_target(self):
        from repro.controller.fsm import Transition

        design = sqrt_design()
        fsm = design.fsm
        fsm.states[0].transition = Transition(999)
        with pytest.raises(ControllerError):
            fsm.validate()


class TestEncoding:
    def test_binary_bits(self):
        design = sqrt_design()
        encoding = encode_states(design.fsm, "binary")
        assert encoding.bits == 2  # 4 states
        assert len(set(encoding.codes.values())) == 4

    def test_onehot(self):
        design = sqrt_design()
        encoding = encode_states(design.fsm, "onehot")
        assert encoding.bits == design.fsm.state_count
        for code in encoding.codes.values():
            assert bin(code).count("1") == 1

    def test_gray_unique(self):
        design = sqrt_design(fu=1)
        encoding = encode_states(design.fsm, "gray")
        assert len(set(encoding.codes.values())) == design.fsm.state_count

    def test_unknown_style(self):
        design = sqrt_design()
        with pytest.raises(ControllerError):
            encode_states(design.fsm, "johnson")

    def test_next_state_terms_positive(self):
        design = sqrt_design()
        encoding = encode_states(design.fsm, "binary")
        assert encoding.next_state_terms(design.fsm) > 0

    def test_onehot_more_ff_fewer_decode(self):
        design = sqrt_design(fu=1)
        binary = encode_states(design.fsm, "binary")
        onehot = encode_states(design.fsm, "onehot")
        assert onehot.flipflops > binary.flipflops


class TestMicrocode:
    def test_word_per_state(self):
        design = sqrt_design()
        microcode = MicrocodeGenerator(design).generate()
        assert microcode.states == design.fsm.state_count

    def test_horizontal_width_is_field_sum(self):
        design = sqrt_design()
        microcode = MicrocodeGenerator(design).generate()
        assert microcode.horizontal_width == sum(
            f.width for f in microcode.fields
        )

    def test_encoded_no_wider_than_horizontal(self):
        """Dictionary encoding can only shrink the per-state word."""
        design = synthesize_cdfg(
            diffeq_cdfg(),
            SynthesisOptions(constraints=ResourceConstraints({"fu": 2})),
        )
        microcode = MicrocodeGenerator(design).generate()
        assert (
            microcode.encoded_width - microcode.sequencing_width
            <= microcode.horizontal_width
        )
        assert microcode.nanostore_words <= microcode.states

    def test_load_enables_match_latches(self):
        design = sqrt_design()
        microcode = MicrocodeGenerator(design).generate()
        for state, word in zip(design.fsm.states, microcode.words):
            expected = {
                f"ld_{latch.target[0]}_{latch.target[1]}"
                for latch in state.plan.latches_at(state.step)
            }
            asserted = {
                name for name, value in word.items()
                if name.startswith("ld_") and value
            }
            assert expected == asserted
