"""Tests for the workload builders themselves."""

import math

import pytest

from repro.ir import OpKind
from repro.sim import run_behavior
from repro.workloads import (
    RandomDFGSpec,
    diffeq_cdfg,
    diffeq_inputs,
    ewf_cdfg,
    fig3_cdfg,
    fig5_cdfg,
    fig6_cdfg,
    fir_block_cdfg,
    fir_cdfg,
    random_dfg,
    sqrt_cdfg,
)


class TestSqrtWorkload:
    def test_structure(self):
        cdfg = sqrt_cdfg()
        assert len(cdfg.blocks()) == 2
        assert len(cdfg.loops()) == 1

    def test_converges_across_domain(self):
        cdfg = sqrt_cdfg()
        for k in range(1, 17):
            x = k / 16
            out = run_behavior(cdfg, {"X": x})
            assert out["Y"] == pytest.approx(math.sqrt(x), abs=5e-4)


class TestDiffeqWorkload:
    def test_reference_euler(self):
        """The behavioral result matches a plain-Python Euler
        integration with the same fixed-point quantization applied."""
        from repro.ir.types import FixedType

        fmt = FixedType(32, 16)
        inputs = diffeq_inputs(5)
        x, y, u = inputs["x0"], inputs["y0"], inputs["u0"]
        dx, a = fmt.quantize(inputs["dx"]), fmt.quantize(inputs["a"])
        while x < a:
            x1 = fmt.quantize(x + dx)
            t1 = fmt.quantize(fmt.quantize(fmt.quantize(3.0) * x) * u)
            t1 = fmt.quantize(t1 * dx)
            t2 = fmt.quantize(fmt.quantize(fmt.quantize(3.0) * y) * dx)
            u1 = fmt.quantize(fmt.quantize(u - t1) - t2)
            y1 = fmt.quantize(y + fmt.quantize(u * dx))
            x, u, y = x1, u1, y1
        out = run_behavior(diffeq_cdfg(), inputs)
        assert out["xn"] == pytest.approx(x, abs=1e-9)
        assert out["yn"] == pytest.approx(y, abs=1e-3)

    def test_op_mix(self):
        cdfg = diffeq_cdfg()
        body_kinds = [
            op.kind
            for op in cdfg.operations()
        ]
        assert body_kinds.count(OpKind.MUL) == 6
        assert body_kinds.count(OpKind.LT) == 1


class TestEWF:
    def test_op_counts(self):
        cdfg = ewf_cdfg()
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.ADD) == 26
        assert kinds.count(OpKind.MUL) == 8

    def test_behavioral_runs(self):
        cdfg = ewf_cdfg()
        inputs = {"x": 0.5}
        inputs.update({f"sv{i}": 0.0 for i in range(7)})
        out = run_behavior(cdfg, inputs)
        assert "y" in out and len(out) == 8

    def test_filter_responds_to_input(self):
        cdfg = ewf_cdfg()
        zero = {"x": 0.0, **{f"sv{i}": 0.0 for i in range(7)}}
        one = {"x": 1.0, **{f"sv{i}": 0.0 for i in range(7)}}
        assert run_behavior(cdfg, zero)["y"] != run_behavior(
            cdfg, one
        )["y"]


class TestFIR:
    def test_loop_fir_computes_inner_product(self):
        cdfg = fir_cdfg(4)
        memories = {"c": [1.0, 2.0, 3.0, 4.0], "s": [0.0, 1.0, 1.0, 1.0]}
        out = run_behavior(cdfg, {"x": 2.0}, memories)
        # s[0] := x first, so the product is 1*2 + 2*1 + 3*1 + 4*1.
        assert out["y"] == pytest.approx(11.0)

    def test_flat_fir_matches_formula(self):
        cdfg = fir_block_cdfg(4)
        inputs = {}
        expected = 0.0
        for i in range(4):
            inputs[f"x{i}"] = 0.5 * (i + 1)
            inputs[f"c{i}"] = 0.25
            expected += 0.5 * (i + 1) * 0.25
        out = run_behavior(cdfg, inputs)
        assert out["y"] == pytest.approx(expected, abs=1e-3)

    def test_flat_fir_shape(self):
        cdfg = fir_block_cdfg(8)
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.MUL) == 8
        assert kinds.count(OpKind.ADD) == 7


class TestFigureWorkloads:
    def test_fig3_has_mul_and_chain(self):
        cdfg = fig3_cdfg()
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.MUL) == 2
        assert kinds.count(OpKind.ADD) == 2

    def test_fig5_three_adds_four_muls(self):
        cdfg = fig5_cdfg()
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.ADD) == 3
        assert kinds.count(OpKind.MUL) == 5

    def test_fig6_four_adds(self):
        cdfg = fig6_cdfg()
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.ADD) == 4


class TestRandomDFG:
    def test_deterministic(self):
        a = random_dfg(RandomDFGSpec(ops=12, seed=7))
        b = random_dfg(RandomDFGSpec(ops=12, seed=7))
        assert [op.kind for op in a.operations()] == [
            op.kind for op in b.operations()
        ]

    def test_seed_changes_graph(self):
        a = random_dfg(RandomDFGSpec(ops=12, seed=7))
        b = random_dfg(RandomDFGSpec(ops=12, seed=8))
        assert [op.kind for op in a.operations()] != [
            op.kind for op in b.operations()
        ]

    def test_requested_op_count(self):
        cdfg = random_dfg(RandomDFGSpec(ops=25, seed=3))
        computes = [
            op for op in cdfg.operations()
            if op.kind in (OpKind.ADD, OpKind.SUB, OpKind.MUL)
        ]
        assert len(computes) == 25

    def test_behavioral_executability(self):
        cdfg = random_dfg(RandomDFGSpec(ops=15, seed=11))
        inputs = {port.name: 0.5 for port in cdfg.inputs}
        out = run_behavior(cdfg, inputs)
        assert out  # at least one output produced
