"""Property-based end-to-end testing: random programs and DFGs through
the complete flow, with RTL ≡ behavior as the invariant.

This is the strongest single check in the suite: any scheduling,
allocation, storage-planning, controller or simulator bug that affects
an architectural result shows up as an output divergence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SCHEDULERS, SynthesisOptions, synthesize_cdfg
from repro.scheduling import ResourceConstraints, TypedFUModel
from repro.sim import check_equivalence, default_vectors
from repro.verify import run_differential
from repro.workloads import RandomDFGSpec, random_dfg


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(1, 100_000),
    ops=st.integers(4, 22),
    fus=st.integers(1, 3),
)
def test_random_dfg_equivalence(seed, ops, fus):
    cdfg = random_dfg(RandomDFGSpec(ops=ops, seed=seed))
    design = synthesize_cdfg(
        cdfg,
        SynthesisOptions(
            model=TypedFUModel(single_cycle=True),
            constraints=ResourceConstraints({"add": fus, "mul": fus}),
        ),
    )
    vectors = default_vectors(design.cdfg, count=4, seed=seed)
    report = check_equivalence(design, vectors=vectors)
    assert report.equivalent


#: The grid runs without hard resource limits: force-directed is a
#: *time-constrained* scheduler (it minimizes units under a deadline,
#: it does not enforce limits), so under tight constraints the engine
#: correctly rejects its schedules.  Resource-constrained behavior is
#: covered by test_random_dfg_equivalence and the constrained subset
#: below.
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(1, 100_000))
def test_random_dfg_scheduler_grid(scheduler, seed):
    """Every registered scheduler, via the differential engine: stage
    contracts pass and RTL matches the behavioral reference."""
    report = run_differential(
        lambda: random_dfg(RandomDFGSpec(ops=14, seed=seed)),
        schedulers=[scheduler],
        allocators=["left-edge"],
        options=SynthesisOptions(
            model=TypedFUModel(single_cycle=True),
        ),
    )
    assert report.ok, report.render()


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(1, 100_000),
    scheduler=st.sampled_from(
        ["asap", "list", "ysc", "freedom-based", "branch-and-bound"]
    ),
)
def test_random_dfg_constrained_scheduler_grid(seed, scheduler):
    """The resource-constrained schedulers under tight limits."""
    report = run_differential(
        lambda: random_dfg(RandomDFGSpec(ops=14, seed=seed)),
        schedulers=[scheduler],
        allocators=["left-edge"],
        options=SynthesisOptions(
            model=TypedFUModel(single_cycle=True),
            constraints=ResourceConstraints({"add": 2, "mul": 1}),
        ),
    )
    assert report.ok, report.render()


@pytest.mark.slow
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(1, 100_000))
def test_random_dfg_scheduler_grid_deep(scheduler, seed):
    """--runslow variant of the grid with a raised hypothesis budget."""
    report = run_differential(
        lambda: random_dfg(RandomDFGSpec(ops=16, seed=seed)),
        schedulers=[scheduler],
        allocators=["left-edge", "clique"],
        options=SynthesisOptions(
            model=TypedFUModel(single_cycle=True),
        ),
    )
    assert report.ok, report.render()


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(1, 100_000),
    mul_delay=st.integers(1, 3),
)
def test_random_dfg_multicycle_equivalence(seed, mul_delay):
    """Multicycle multipliers exercise the pending-result plumbing."""
    cdfg = random_dfg(RandomDFGSpec(ops=12, seed=seed, mul_weight=3))
    design = synthesize_cdfg(
        cdfg,
        SynthesisOptions(
            model=TypedFUModel(delays={"mul": mul_delay}),
            constraints=ResourceConstraints({"add": 1, "mul": 1}),
        ),
    )
    vectors = default_vectors(design.cdfg, count=3, seed=seed)
    assert check_equivalence(design, vectors=vectors).equivalent


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(1, 100_000))
def test_random_dfg_unoptimized_vs_optimized_cycles(seed):
    """Optimization never makes the design slower in cycles."""
    from repro.sim import RTLSimulator

    spec = RandomDFGSpec(ops=15, seed=seed)
    constraints = ResourceConstraints({"add": 2, "mul": 2})

    plain = synthesize_cdfg(
        random_dfg(spec),
        SynthesisOptions(constraints=constraints, optimize_ir=False,
                         model=TypedFUModel(single_cycle=True)),
    )
    optimized = synthesize_cdfg(
        random_dfg(spec),
        SynthesisOptions(constraints=constraints, optimize_ir=True,
                         model=TypedFUModel(single_cycle=True)),
    )
    inputs = default_vectors(plain.cdfg, count=1, seed=seed)[0]
    plain_sim = RTLSimulator(plain)
    plain_sim.run(inputs)
    optimized_sim = RTLSimulator(optimized)
    optimized_sim.run(inputs)
    assert optimized_sim.cycles <= plain_sim.cycles
