"""Coverage for resource-model variants, report rendering and
remaining odds and ends."""


from repro.ir import OpKind
from repro.lang import compile_source
from repro.scheduling import (
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
    UniversalFUModel,
)
from repro.workloads import SQRT_SOURCE, fig6_cdfg, sqrt_cdfg


class TestUniversalModel:
    def test_bare_moves_costed_by_default(self):
        cdfg = sqrt_cdfg()
        entry = cdfg.blocks()[0]
        move = entry.var_writes()["I"]  # I := 0, a bare constant move
        assert UniversalFUModel().op_class(move) == "fu"

    def test_bare_moves_free_when_disabled(self):
        cdfg = sqrt_cdfg()
        entry = cdfg.blocks()[0]
        move = entry.var_writes()["I"]
        model = UniversalFUModel(count_bare_moves=False)
        assert model.op_class(move) is None

    def test_computed_write_always_free(self):
        cdfg = sqrt_cdfg()
        entry = cdfg.blocks()[0]
        write = entry.var_writes()["Y"]  # fed by the add
        assert UniversalFUModel().op_class(write) is None

    def test_constant_shift_free(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a >> 2;
end
""")
        shift = next(
            op for op in cdfg.operations() if op.kind is OpKind.SHR
        )
        assert UniversalFUModel().op_class(shift) is None
        assert UniversalFUModel().delay(shift) == 0

    def test_variable_shift_costed(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input n: uint<3>; output b: int<8>);
begin
  b := a >> n;
end
""")
        shift = next(
            op for op in cdfg.operations() if op.kind is OpKind.SHR
        )
        assert UniversalFUModel().op_class(shift) == "fu"


class TestTypedModel:
    def test_class_mapping(self):
        cdfg = fig6_cdfg()
        add = next(
            op for op in cdfg.operations() if op.kind is OpKind.ADD
        )
        assert TypedFUModel().op_class(add) == "add"

    def test_custom_delays(self):
        cdfg = fig6_cdfg()
        add = next(
            op for op in cdfg.operations() if op.kind is OpKind.ADD
        )
        model = TypedFUModel(delays={"add": 3})
        assert model.delay(add) == 3

    def test_single_cycle_override(self):
        cdfg = fig6_cdfg()
        add = next(
            op for op in cdfg.operations() if op.kind is OpKind.ADD
        )
        model = TypedFUModel(delays={"add": 3}, single_cycle=True)
        assert model.delay(add) == 1

    def test_costed_constant_shifts(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a >> 2;
end
""")
        shift = next(
            op for op in cdfg.operations() if op.kind is OpKind.SHR
        )
        model = TypedFUModel(free_const_shifts=False)
        assert model.op_class(shift) == "shift"
        assert model.delay(shift) == 1


class TestReports:
    def test_schedule_table_marks_free_and_classes(self):
        cdfg = sqrt_cdfg()
        problem = SchedulingProblem.from_block(
            cdfg.blocks()[0], UniversalFUModel(),
            ResourceConstraints({"fu": 2}),
        )
        table = ListScheduler(problem).schedule().table()
        assert "[fu]" in table
        assert "[free]" in table

    def test_allocation_report_lists_units_and_registers(self):
        from repro.allocation import LeftEdgeRegisterAllocator

        cdfg = sqrt_cdfg()
        problem = SchedulingProblem.from_block(
            cdfg.blocks()[1], UniversalFUModel(),
            ResourceConstraints({"fu": 2}),
        )
        schedule = ListScheduler(problem).schedule()
        allocation = LeftEdgeRegisterAllocator(schedule).allocate()
        report = allocation.report()
        assert "fu0:" in report
        assert "r0:" in report

    def test_design_report_and_log(self):
        from repro.core import synthesize

        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        assert "controller: 4 states" in design.report()
        assert any("optimize" in line for line in design.log)

    def test_equivalence_report_mismatch_listing(self):
        from repro.sim.equivalence import EquivalenceReport, VectorResult

        report = EquivalenceReport()
        report.results.append(
            VectorResult({"x": 1}, {"y": 2}, {"y": 2}, 5)
        )
        report.results.append(
            VectorResult({"x": 2}, {"y": 3}, {"y": 4}, 5)
        )
        assert not report.equivalent
        assert len(report.mismatches) == 1
        assert report.max_cycles == 5

    def test_area_estimate_with_width_override(self):
        from repro.core import synthesize
        from repro.estimation import estimate_area

        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        narrow = estimate_area(design, datapath_width=8)
        wide = estimate_area(design, datapath_width=32)
        assert wide.multiplexers >= narrow.multiplexers

    def test_fsm_dot_well_formed(self):
        from repro.core import synthesize

        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        dot = design.fsm.dot()
        assert dot.count("->") >= design.fsm.state_count
