"""Regression gate over the checked-in corpus (``tests/corpus/``).

Every entry is a once-failing (or coverage-interesting) case that must
stay green forever: first under its own recorded pipeline
configuration with a bit-identical coverage fingerprint, then through
the *full* scheduler × allocator matrix so a fix in one combo cannot
regress another.
"""

from pathlib import Path

import pytest

from repro.verify import Corpus, replay_corpus, run_differential
from repro.workloads import build_dfg

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def _entries():
    return Corpus(CORPUS_DIR).load()


def test_regression_corpus_is_present_and_well_formed():
    entries = _entries()
    assert len(entries) >= 5
    assert len({e.key for e in entries}) == len(entries)
    assert len({e.fingerprint for e in entries}) == len(entries)
    # The force-directed FDLS-legalization regression must stay pinned
    # (its shrunk 2-op case is the smallest oversubscription trigger).
    assert any(
        e.case.scheduler == "force-directed" and e.case.fu_limit == 1
        and len(e.case.recipe.ops) == 2
        for e in entries
    )


def test_replay_passes_with_zero_drift():
    report = replay_corpus(CORPUS_DIR)
    assert report.ok, report.render()
    assert len(report.rows) == len(_entries())
    for row in report.rows:
        assert not row.drifted, (
            f"{row.key}: stored {row.stored_fingerprint} "
            f"!= replayed {row.fingerprint}"
        )


@pytest.mark.parametrize(
    "entry", _entries(), ids=lambda e: e.key,
)
def test_entry_is_clean_through_the_full_matrix(entry):
    """A fixed bug must stay fixed in *every* combo, not just the one
    that originally tripped it."""
    report = run_differential(
        lambda: build_dfg(entry.case.recipe),
        options=entry.case.options(),
        vector_count=3,
        label=entry.key,
    )
    assert report.ok, report.render()
