"""Tests for the Prometheus text exposition exporter.

The exporter's contract is byte-stability (same registry state →
identical payload) plus conformance to the text format 0.0.4 grammar:
``# HELP``/``# TYPE`` headers per family, ``_total`` counters,
cumulative ``_bucket{le=...}`` series capped by ``+Inf``, and
``_sum``/``_count`` per histogram.  A small grammar validator pins all
of that without depending on a prometheus client library.
"""

import re

from repro.obs import to_prometheus
from repro.obs.metrics import MetricsRegistry

_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*="         # optional label set
    r'"(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r"(,[a-zA-Z_][a-zA-Z0-9_]*="
    r'"(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e-?\d+)?|Inf)|NaN)$"
)
_HELP_LINE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
)


def assert_valid_exposition(text: str) -> None:
    """Every line must be a HELP, TYPE, or sample line."""
    assert text == "" or text.endswith("\n")
    for line in text.splitlines():
        assert (
            _HELP_LINE.match(line)
            or _TYPE_LINE.match(line)
            or _METRIC_LINE.match(line)
        ), f"invalid exposition line: {line!r}"


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(3)
    registry.counter("cache.misses").inc()
    registry.counter("sched.steps", scheduler="list").inc(7)
    registry.counter("sched.steps", scheduler="asap").inc(2)
    registry.gauge("exec.pool.workers").set(4)
    registry.gauge("engine.mem.peak_kb", stage="schedule").set(128.5)
    hist = registry.histogram("latency_ms", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 0.7, 3.0, 20.0):
        hist.observe(value)
    return registry


class TestToPrometheus:
    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_grammar_valid(self):
        assert_valid_exposition(to_prometheus(populated_registry()))

    def test_byte_stable_across_renders(self):
        registry = populated_registry()
        first = to_prometheus(registry)
        second = to_prometheus(registry)
        assert first == second
        # and stable across *equal states*, not just the same object
        assert to_prometheus(populated_registry()) == first

    def test_counters_get_total_suffix_and_namespace(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 3" in text
        assert "repro_cache_misses_total 1" in text

    def test_label_series_sorted_within_family(self):
        text = to_prometheus(populated_registry())
        asap = text.index('repro_sched_steps_total{scheduler="asap"} 2')
        list_ = text.index('repro_sched_steps_total{scheduler="list"} 7')
        assert asap < list_

    def test_gauges(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE repro_exec_pool_workers gauge" in text
        assert "repro_exec_pool_workers 4" in text
        assert ('repro_engine_mem_peak_kb{stage="schedule"} 128.5'
                in text)

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(populated_registry())
        assert 'repro_latency_ms_bucket{le="1"} 2' in text
        assert 'repro_latency_ms_bucket{le="5"} 3' in text
        assert 'repro_latency_ms_bucket{le="10"} 3' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 4' in text
        assert "repro_latency_ms_sum 24.2" in text
        assert "repro_latency_ms_count 4" in text

    def test_bucket_order_help_before_type_before_samples(self):
        text = to_prometheus(populated_registry())
        lines = text.splitlines()
        help_at = lines.index("# HELP repro_latency_ms repro "
                              "histogram latency_ms")
        type_at = lines.index("# TYPE repro_latency_ms histogram")
        assert type_at == help_at + 1
        assert lines[type_at + 1].startswith("repro_latency_ms_bucket")

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd.counter", tag='quo"te\\slash').inc()
        text = to_prometheus(registry)
        assert r'tag="quo\"te\\slash"' in text
        assert_valid_exposition(text)

    def test_namespace_override(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc()
        assert "hls_cache_hits_total 1" in to_prometheus(
            registry, namespace="hls"
        )

    def test_default_registry_is_process_registry(self):
        from repro import obs

        obs.metrics().counter("cache.hits").inc(5)
        assert "repro_cache_hits_total 5" in to_prometheus()

    def test_integral_floats_print_as_integers(self):
        registry = MetricsRegistry()
        registry.gauge("g.exact").set(2.0)
        registry.gauge("g.frac").set(2.25)
        text = to_prometheus(registry)
        assert "repro_g_exact 2\n" in text
        assert "repro_g_frac 2.25\n" in text
