"""Tests for the persistent QoR run ledger and regression reports.

Covers the record format (content-addressed, round-trippable), the
segment store (idempotent appends, corrupt-segment skip, concurrent
writers from two ``repro.exec`` processes), the engine integration
(exactly one record per synthesis invocation, scope suppression), the
regression comparator (injected latency regression fails, identical
re-run passes), and the ``history``/``report`` CLI verbs.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.core import SynthesisOptions, synthesize
from repro.obs import ledger as run_ledger
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    build_record,
    configure_ledger,
    ledger_scope,
)
from repro.obs.regression import (
    Threshold,
    compare,
    parse_threshold,
)
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE


def make_record(latency=10, wall=1.0, seq=0, workload="w",
                kind="synth", **qor_extra):
    """A synthetic comparable record (fixed group key, varying QoR)."""
    qor = {
        "latency_csteps": latency,
        "fu_total": 2,
        "registers": 4,
        "area": {"total": 100.0},
    }
    qor.update(qor_extra)
    return RunRecord(
        kind=kind,
        workload=workload,
        created_at=f"2026-01-01T00:00:{seq:02d}Z",
        wall_s=wall,
        env={"schema": 1, "source_digest": "d" * 16, "options": "()"},
        qor=qor,
    )


# ------------------------------------------------------------ RunRecord


class TestRunRecord:
    def test_round_trip_through_json(self):
        record = make_record(latency=7, wall=0.25)
        line = record.to_json()
        revived = RunRecord.from_dict(json.loads(line))
        assert revived == record
        assert revived.run_id == record.run_id

    def test_run_id_is_content_address(self):
        a = make_record(latency=7)
        b = make_record(latency=7)
        c = make_record(latency=8)
        assert a.run_id == b.run_id
        assert a.run_id != c.run_id
        assert a.run_id == a.compute_run_id()

    def test_build_record_from_design(self):
        options = SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2})
        )
        design = synthesize(SQRT_SOURCE, options=options)
        record = build_record("synth", design.cdfg.name, design=design,
                              source_digest="abc", options=options,
                              wall_s=0.125)
        assert record.kind == "synth"
        assert record.qor["latency_csteps"] > 0
        assert record.qor["fu_total"] == 2
        assert record.qor["registers"] == design.register_count
        assert record.qor["area"]["total"] > 0
        assert record.env["source_digest"] == "abc"
        assert record.env["options"]
        assert record.wall_s == 0.125


# ------------------------------------------------------------ RunLedger


class TestRunLedger:
    def test_append_then_read(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        first = make_record(latency=5, seq=0)
        second = make_record(latency=6, seq=1)
        ledger.append(second)
        ledger.append(first)
        got = ledger.records()
        # ordered by created_at regardless of append order
        assert [r.qor["latency_csteps"] for r in got] == [5, 6]
        assert len(ledger) == 2

    def test_append_is_idempotent(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        record = make_record()
        ledger.append(record)
        ledger.append(record)
        assert len(ledger) == 1
        assert len(ledger.records()) == 1

    def test_corrupt_segments_are_skipped(self, tmp_path):
        from repro import obs

        ledger = RunLedger(tmp_path / "ledger")
        ledger.append(make_record(seq=0))
        ledger.append(make_record(seq=1, latency=11))
        seg = ledger.segment_dir
        with open(os.path.join(seg, "zz-truncated.jsonl"), "w") as fh:
            fh.write('{"kind": "synth", "workl')
        with open(os.path.join(seg, "zz-notdict.jsonl"), "w") as fh:
            fh.write('[1, 2, 3]\n')
        with open(os.path.join(seg, "zz-binary.jsonl"), "wb") as fh:
            fh.write(b"\x00\xff\xfe garbage")
        got = ledger.records()
        assert len(got) == 2
        assert obs.metrics().counters()["ledger.corrupt"] >= 3

    def test_missing_directory_reads_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "never-created")
        assert ledger.records() == []
        assert len(ledger) == 0


# ---------------------------------------------------- engine integration


class TestEngineIntegration:
    OPTIONS = dict(constraints=ResourceConstraints({"fu": 2}))

    def test_synthesis_appends_exactly_one_record(self, tmp_path):
        ledger = configure_ledger(tmp_path / "ledger")
        synthesize(SQRT_SOURCE,
                   options=SynthesisOptions(**self.OPTIONS))
        records = ledger.records()
        assert len(records) == 1
        record = records[0]
        assert record.kind == "synth"
        assert record.workload == "sqrt"
        assert record.qor["latency_csteps"] > 0
        assert record.extra["cached"] is False
        assert record.env["source_digest"]

    def test_cache_hit_still_records_and_marks_cached(self, tmp_path):
        ledger = configure_ledger(tmp_path / "ledger")
        synthesize(SQRT_SOURCE, use_cache=True,
                   options=SynthesisOptions(**self.OPTIONS))
        synthesize(SQRT_SOURCE, use_cache=True,
                   options=SynthesisOptions(**self.OPTIONS))
        records = ledger.records()
        assert len(records) == 2
        assert sorted(r.extra["cached"] for r in records) == [
            False, True,
        ]

    def test_ledger_scope_suppresses_engine_records(self, tmp_path):
        ledger = configure_ledger(tmp_path / "ledger")
        with ledger_scope():
            synthesize(SQRT_SOURCE,
                       options=SynthesisOptions(**self.OPTIONS))
        assert len(ledger.records()) == 0
        assert not run_ledger.in_ledger_scope()

    def test_no_ledger_no_records(self, tmp_path):
        configure_ledger(None)
        synthesize(SQRT_SOURCE,
                   options=SynthesisOptions(**self.OPTIONS))
        assert run_ledger.active_ledger() is None

    def test_explore_appends_single_summary_record(self, tmp_path):
        from repro.explore import explore_fu_range

        ledger = configure_ledger(tmp_path / "ledger")
        explore_fu_range(SQRT_SOURCE, [1, 2])
        records = ledger.records()
        assert len(records) == 1
        assert records[0].kind == "explore"
        assert records[0].extra["points"]


# ------------------------------------------------- concurrent writers


def _worker_append(payload):
    """Append one record to the shared ledger (runs in a child
    process via repro.exec)."""
    root, index = payload
    ledger = RunLedger(root)
    return ledger.append(make_record(latency=10 + index, seq=index,
                                     workload=f"w{index}"))


class TestConcurrentAppends:
    def test_two_exec_workers_leave_parseable_ledger(self, tmp_path):
        from repro.exec import run_tasks

        root = str(tmp_path / "ledger")
        batch = run_tasks(
            _worker_append,
            [(root, index) for index in range(4)],
            max_workers=2,
        )
        assert batch.ok
        ledger = RunLedger(root)
        records = ledger.records()
        assert len(records) == 4
        assert sorted(r.workload for r in records) == [
            "w0", "w1", "w2", "w3",
        ]
        # every returned run id corresponds to a stored record
        assert sorted(batch.values()) == sorted(
            r.run_id for r in records
        )


# ------------------------------------------------------------ regression


class TestRegression:
    def test_identical_rerun_is_clean(self):
        records = [make_record(latency=10, seq=i) for i in range(3)]
        report = compare(records)
        assert report.status == "ok"
        assert report.exit_code == 0

    def test_injected_latency_regression_fails(self):
        records = [make_record(latency=10, seq=i) for i in range(3)]
        records.append(make_record(latency=12, seq=3))
        report = compare(records)
        assert report.status == "regression"
        assert report.exit_code == 2
        families = {
            v.family: v for v in report.groups[0].verdicts
        }
        assert families["latency_csteps"].status == "regression"
        assert families["latency_csteps"].change_pct == pytest.approx(20.0)

    def test_improvement_is_not_a_failure(self):
        records = [make_record(latency=10, seq=i) for i in range(3)]
        records.append(make_record(latency=8, seq=3))
        report = compare(records)
        assert report.exit_code == 0
        families = {v.family: v for v in report.groups[0].verdicts}
        assert families["latency_csteps"].status == "improved"

    def test_first_run_of_a_group_is_new(self):
        report = compare([make_record(latency=10)])
        assert report.groups[0].status == "new"
        assert report.exit_code == 0

    def test_changed_options_start_a_fresh_group(self):
        records = [make_record(latency=10, seq=i) for i in range(3)]
        changed = make_record(latency=99, seq=3)
        changed.env = dict(changed.env, options="(fu=1)")
        records.append(changed)
        report = compare(records)
        assert report.exit_code == 0  # never compared across groups
        assert len(report.groups) == 2

    def test_baseline_is_median_of_window(self):
        # history 10, 10, 40 (spike), latest 11: median 10 -> fails
        records = [make_record(latency=10, seq=0),
                   make_record(latency=10, seq=1),
                   make_record(latency=40, seq=2),
                   make_record(latency=11, seq=3)]
        report = compare(records)
        families = {v.family: v for v in report.groups[0].verdicts}
        assert families["latency_csteps"].baseline == 10
        assert families["latency_csteps"].status == "regression"

    def test_wall_clock_noise_floor(self):
        # sub-50ms baselines never fail, however large the ratio
        records = [make_record(latency=10, wall=0.01, seq=i)
                   for i in range(3)]
        records.append(make_record(latency=10, wall=0.04, seq=3))
        report = compare(records)
        assert report.exit_code == 0

    def test_threshold_override(self):
        records = [make_record(latency=10, seq=i) for i in range(3)]
        records.append(make_record(latency=12, seq=3))
        report = compare(records, thresholds={
            "latency_csteps": Threshold(warn_pct=10.0, fail_pct=50.0),
        })
        assert report.status == "warn"
        assert report.exit_code == 1

    def test_parse_threshold(self):
        family, threshold = parse_threshold("wall_s=10,50")
        assert family == "wall_s"
        assert threshold.warn_pct == 10.0
        assert threshold.fail_pct == 50.0
        assert threshold.min_base == 0.05  # default floor kept
        _, disabled = parse_threshold("latency_csteps=-,5")
        assert disabled.warn_pct is None
        assert disabled.fail_pct == 5.0
        with pytest.raises(ValueError):
            parse_threshold("garbage")

    def test_lint_findings_growth_warns_and_errors_fail(self):
        def lint_record(findings, errors, seq):
            return RunRecord(
                kind="lint",
                workload="demo",
                created_at=f"2026-01-01T00:00:{seq:02d}Z",
                wall_s=0.2,
                env={"schema": 1, "source_digest": "d" * 16,
                     "options": "()"},
                extra={"findings": findings, "errors": errors,
                       "rule_counts": {"src.dead-store": findings}},
            )

        base = [lint_record(4, 0, seq) for seq in range(3)]
        report = compare(base + [lint_record(5, 0, 3)])
        families = {v.family: v for v in report.groups[0].verdicts}
        assert families["lint_findings"].status == "warn"
        assert report.exit_code == 1

        report = compare(base + [lint_record(4, 1, 3)])
        families = {v.family: v for v in report.groups[0].verdicts}
        assert families["lint_errors"].status == "regression"
        assert report.exit_code == 2

    def test_synth_records_skip_lint_families(self):
        records = [make_record(latency=10, seq=i) for i in range(3)]
        report = compare(records)
        families = {v.family for v in report.groups[0].verdicts}
        assert "lint_findings" not in families
        assert "lint_errors" not in families

    def test_markdown_and_text_renderings(self):
        records = [make_record(latency=10, seq=i) for i in range(2)]
        records.append(make_record(latency=12, seq=2))
        report = compare(records)
        text = report.render()
        assert "regression" in text
        assert "exit 2" in text
        markdown = report.to_markdown()
        assert markdown.startswith("## QoR regression report")
        assert "| synth:w | latency_csteps |" in markdown


# ------------------------------------------------------------------ CLI


@pytest.fixture
def sqrt_file(tmp_path):
    path = tmp_path / "sqrt.bsl"
    path.write_text(SQRT_SOURCE)
    return str(path)


class TestLedgerCLI:
    def test_synth_ledger_history_report_round_trip(
            self, sqrt_file, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        for _ in range(2):
            assert main(["synth", sqrt_file, "--fu", "2",
                         "--ledger", ledger_dir]) == 0
        capsys.readouterr()

        assert main(["history", "--ledger", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("synth") >= 2
        assert "sqrt" in out

        assert main(["history", "--ledger", ledger_dir,
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(row["kind"] == "synth" for row in rows)

        assert main(["report", "--ledger", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_report_detects_injected_regression(
            self, sqrt_file, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        for _ in range(2):
            assert main(["synth", sqrt_file, "--fu", "2",
                         "--ledger", ledger_dir]) == 0
        capsys.readouterr()

        # tamper: re-append the latest record with worse latency,
        # same group key, later timestamp
        ledger = RunLedger(ledger_dir)
        latest = ledger.records()[-1]
        data = latest.to_dict()
        data.pop("run_id")
        data["created_at"] = "2999-01-01T00:00:00Z"
        data["qor"] = dict(data["qor"],
                           latency_csteps=data["qor"]["latency_csteps"] + 3)
        ledger.append(RunRecord.from_dict(data))

        assert main(["report", "--ledger", ledger_dir]) == 2
        assert "regression" in capsys.readouterr().out

        assert main(["report", "--ledger", ledger_dir,
                     "--format", "json"]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 2
        assert doc["status"] == "regression"

        assert main(["report", "--ledger", ledger_dir,
                     "--format", "markdown"]) == 2
        assert "## QoR regression report" in capsys.readouterr().out

    def test_history_limit_and_filters(self, sqrt_file, tmp_path,
                                       capsys):
        ledger_dir = str(tmp_path / "ledger")
        assert main(["synth", sqrt_file, "--fu", "2",
                     "--ledger", ledger_dir]) == 0
        capsys.readouterr()
        assert main(["history", "--ledger", ledger_dir,
                     "--kind", "fuzz", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []
        assert main(["history", "--ledger", ledger_dir,
                     "--limit", "0", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_report_empty_ledger_is_clean(self, tmp_path, capsys):
        assert main(["report", "--ledger",
                     str(tmp_path / "empty")]) == 0
        assert "no runs" in capsys.readouterr().out
