"""The coverage-guided corpus fuzzer: acceptance and invariants.

The acceptance test pins the tentpole claim: a 200-mutation
coverage-guided run on a fixed master seed reaches coverage
fingerprints the fixed-seed fuzzer never finds at the same budget.
The rest pins the loop's contracts — hermetic replay, persistence,
minimization never losing a fingerprint, determinism, and clean runs
leaving no side-effect directories behind.
"""

import json
from dataclasses import replace

import pytest

from repro.core.engine import SCHEDULERS
from repro.errors import SchedulingError
from repro.obs import metrics
from repro.scheduling import ListScheduler
from repro.verify import (
    TIERS,
    Corpus,
    CorpusEntry,
    evaluate_case,
    fixed_seed_cases,
    fuzz_corpus,
    minimize_corpus,
    replay_corpus,
    seed_case,
)

MASTER_SEED = 7


@pytest.fixture(scope="module")
def standard_run(tmp_path_factory):
    """One standard-tier (200-mutation) run into a persisted corpus."""
    root = tmp_path_factory.mktemp("corpus")
    report = fuzz_corpus(root, tier="standard",
                         master_seed=MASTER_SEED, jobs=1)
    return root, report


@pytest.mark.fuzz_smoke
class TestCoverageGuidedAcceptance:
    def test_run_is_clean_and_grows_a_corpus(self, standard_run):
        root, report = standard_run
        assert report.ok, report.render()
        assert report.mutations == TIERS["standard"].mutations
        entries = Corpus(root).load()
        assert len(entries) == report.corpus_size
        assert len(entries) == len(report.new_entries)
        # Fingerprints are unique by construction: only new coverage
        # enters the corpus.
        assert len({e.fingerprint for e in entries}) == len(entries)

    def test_mutation_beats_fixed_seeds_at_equal_budget(
            self, standard_run):
        """Acceptance: >= 3 fingerprints the fixed-seed fuzzer (same
        total evaluation budget, full combo cycling) never reaches."""
        _, report = standard_run
        tier = TIERS["standard"]
        budget = tier.init_seeds + tier.mutations
        baseline = {
            evaluate_case(case).fingerprint
            for case in fixed_seed_cases(budget)
        }
        novel = report.fingerprints - baseline
        assert len(novel) >= 3, (
            f"only {len(novel)} fingerprints beyond the fixed-seed "
            f"baseline of {len(baseline)}"
        )

    def test_replay_is_hermetic(self, standard_run):
        """Replaying the corpus reproduces every stored fingerprint
        bit for bit."""
        root, _ = standard_run
        entries = Corpus(root).load()
        report = replay_corpus(root)
        assert report.ok, report.render()
        assert len(report.rows) == len(entries)
        assert not any(row.drifted for row in report.rows)

    def test_same_seed_rerun_adds_no_duplicate_keys(self, standard_run):
        root, first = standard_run
        keys_before = {e.key for e in Corpus(root).load()}
        again = fuzz_corpus(root, tier="smoke",
                            master_seed=MASTER_SEED, jobs=1)
        assert again.ok
        keys_after = {e.key for e in Corpus(root).load()}
        assert keys_before <= keys_after  # accumulates, never loses


class TestMinimize:
    def _small_corpus(self, tmp_path, count=4):
        root = tmp_path / "mini"
        corpus = Corpus(root)
        for seed in range(1, count + 1):
            case = seed_case(seed, ops=8)
            result = evaluate_case(case)
            assert result.ok
            assert corpus.add(CorpusEntry(case, result.fingerprint))
        return root, corpus

    def test_minimize_never_drops_a_fingerprint(self, tmp_path):
        root, corpus = self._small_corpus(tmp_path)
        before = {e.fingerprint for e in corpus.load()}
        report = minimize_corpus(root)
        after = {e.fingerprint for e in corpus.load()}
        assert after == before
        assert set(report.fingerprints) == before

    def test_minimize_drops_coverage_duplicates(self, tmp_path):
        root, corpus = self._small_corpus(tmp_path)
        entries = corpus.load()
        target = entries[0]
        # Same pipeline path at a different bit width: coverage is
        # deliberately path-based, so the fingerprint is identical
        # while the content key differs.
        dup_case = replace(
            target.case,
            recipe=replace(target.case.recipe, width=24),
        )
        dup_result = evaluate_case(dup_case)
        assert dup_result.fingerprint == target.fingerprint
        assert dup_case.key != target.case.key
        assert corpus.add(CorpusEntry(dup_case, dup_result.fingerprint))

        count_before = len(corpus.load())
        before = {e.fingerprint for e in corpus.load()}
        report = minimize_corpus(root)
        remaining = corpus.load()
        assert {e.fingerprint for e in remaining} == before
        assert len(remaining) == count_before - 1
        assert len(report.removed) == 1


class TestDeterminismAndHygiene:
    def test_ephemeral_run_is_deterministic(self):
        runs = [
            fuzz_corpus(None, tier="smoke", budget=20, master_seed=11)
            for _ in range(2)
        ]
        assert [e.case.key for e in runs[0].new_entries] == \
               [e.case.key for e in runs[1].new_entries]
        assert [e.fingerprint for e in runs[0].new_entries] == \
               [e.fingerprint for e in runs[1].new_entries]

    def test_evaluate_case_fingerprint_is_reproducible(self):
        case = seed_case(3, ops=8)
        assert (evaluate_case(case).fingerprint
                == evaluate_case(case).fingerprint)

    def test_clean_run_leaves_only_the_corpus_dir(self, tmp_path,
                                                  monkeypatch):
        """No artifacts/ (or anything else) appears on a clean run."""
        monkeypatch.chdir(tmp_path)
        report = fuzz_corpus(tmp_path / "c", tier="smoke", budget=10,
                             master_seed=5)
        assert report.ok
        assert [p.name for p in sorted(tmp_path.iterdir())] == ["c"]

    def test_corrupt_entry_is_skipped_not_deleted(self, tmp_path):
        root = tmp_path / "c"
        corpus = Corpus(root)
        case = seed_case(1, ops=6)
        result = evaluate_case(case)
        assert corpus.add(CorpusEntry(case, result.fingerprint))
        garbage = root / "zz-garbage.json"
        garbage.write_text("{not json")
        assert len(corpus.load()) == 1
        assert garbage.exists()
        assert metrics().counter("fuzz.corpus.corrupt").value == 1

    def test_entry_json_round_trips(self, tmp_path):
        case = seed_case(2, ops=6)
        entry = CorpusEntry(case, "feedc0de00000000",
                            found_by="seed", parent=None)
        corpus = Corpus(tmp_path / "c")
        assert corpus.add(entry)
        raw = json.loads(
            (tmp_path / "c" / f"{entry.key}.json").read_text()
        )
        assert CorpusEntry.from_dict(raw) == entry


class _MulHatingScheduler(ListScheduler):
    """Injected bug: refuses any block containing a multiply."""

    def schedule(self):
        from repro.ir.opcodes import OpKind

        if any(op.kind is OpKind.MUL for op in self.problem.ops):
            raise SchedulingError("injected: cannot schedule MUL")
        return super().schedule()


class TestFailingCases:
    def test_failure_becomes_finding_with_shrunk_repro(
            self, tmp_path, monkeypatch):
        """A failing case never enters the corpus; it shrinks and
        lands in the artifacts directory as a repro script."""
        # The smoke seed phase cycles the combo matrix from the top:
        # seeds 1..4 all use the annealing scheduler, so breaking it
        # breaks every seed case deterministically.
        monkeypatch.setitem(SCHEDULERS, "annealing",
                            _MulHatingScheduler)
        report = fuzz_corpus(
            tmp_path / "c", tier="smoke", budget=0, master_seed=1,
            artifacts_dir=str(tmp_path / "artifacts"),
        )
        assert not report.ok
        assert report.findings
        finding = report.findings[0]
        assert finding.shrunk is not None
        assert finding.shrunk.op_count <= 4
        assert any(kind == "MUL" for kind, _, _ in finding.shrunk.ops)
        script = tmp_path / "artifacts" / (
            f"repro_corpus_{finding.case.key}.py"
        )
        assert script.exists()
        assert "DFGRecipe" in script.read_text()
        # None of the failing cases were persisted.
        failing_keys = {f.case.key for f in report.findings}
        stored = {e.key for e in Corpus(tmp_path / "c").load()}
        assert not failing_keys & stored
