"""Tests for the simulated-annealing transformational scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    BranchAndBoundScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    SimulatedAnnealingScheduler,
    TypedFUModel,
)
from repro.workloads import RandomDFGSpec, ewf_cdfg, fig3_cdfg, random_dfg

UNIT = TypedFUModel(single_cycle=True)


def problem_of(cdfg, constraints=None):
    return SchedulingProblem.from_block(
        cdfg.blocks()[0], UNIT, constraints
    )


class TestAnnealing:
    def test_fig3_reaches_optimum(self):
        problem = problem_of(
            fig3_cdfg(), ResourceConstraints({"mul": 1, "add": 1})
        )
        schedule = SimulatedAnnealingScheduler(problem, seed=7).schedule()
        schedule.validate()
        optimal = BranchAndBoundScheduler(problem).schedule()
        assert schedule.length == optimal.length

    def test_never_worse_than_incumbent(self):
        """SA starts from the list schedule and only keeps
        improvements, so it can never end up worse."""
        problem = problem_of(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        incumbent = ListScheduler(problem).schedule()
        schedule = SimulatedAnnealingScheduler(
            problem, seed=3, moves=500
        ).schedule()
        schedule.validate()
        assert schedule.length <= incumbent.length

    def test_deterministic_per_seed(self):
        problem = problem_of(
            fig3_cdfg(), ResourceConstraints({"mul": 1, "add": 1})
        )
        a = SimulatedAnnealingScheduler(problem, seed=5).schedule()
        b = SimulatedAnnealingScheduler(problem, seed=5).schedule()
        assert a.start == b.start

    def test_register_pressure_tiebreak(self):
        """Among equal-length schedules SA should not increase the
        max-live register bound over the incumbent."""
        from repro.allocation import compute_lifetimes, minimum_registers

        problem = problem_of(
            ewf_cdfg(), ResourceConstraints({"add": 2, "mul": 1})
        )
        incumbent = ListScheduler(problem).schedule()
        annealed = SimulatedAnnealingScheduler(
            problem, seed=11, moves=800
        ).schedule()
        annealed.validate()
        if annealed.length == incumbent.length:
            assert minimum_registers(
                compute_lifetimes(annealed)
            ) <= minimum_registers(compute_lifetimes(incumbent))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(1, 10_000))
    def test_legal_on_random_dfgs(self, seed):
        cdfg = random_dfg(RandomDFGSpec(ops=12, seed=seed))
        problem = problem_of(
            cdfg, ResourceConstraints({"add": 1, "mul": 1})
        )
        schedule = SimulatedAnnealingScheduler(
            problem, seed=seed, moves=300
        ).schedule()
        schedule.validate()


class TestLegalityCheckScope:
    """_legal must reject only SchedulingError — a different exception
    means the annealer itself is broken and has to propagate."""

    def test_illegal_moves_are_counted(self):
        from repro import obs

        problem = problem_of(
            fig3_cdfg(), ResourceConstraints({"mul": 1, "add": 1})
        )
        SimulatedAnnealingScheduler(problem, seed=7).schedule()
        counters = obs.metrics().counters()
        assert counters["scheduler.annealing.illegal_moves"] > 0

    def test_unexpected_exception_propagates(self, monkeypatch):
        from repro.scheduling.base import Schedule

        original = Schedule.validate

        def corrupted(self):
            if self.scheduler == "annealing":
                raise TypeError("corrupted start map")
            return original(self)

        monkeypatch.setattr(Schedule, "validate", corrupted)
        problem = problem_of(
            fig3_cdfg(), ResourceConstraints({"mul": 1, "add": 1})
        )
        with pytest.raises(TypeError, match="corrupted start map"):
            SimulatedAnnealingScheduler(problem, seed=7).schedule()
