"""Unit tests for repro.ir.types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.types import (
    BOOL,
    ArrayType,
    FixedType,
    IntType,
    bit_width,
    common_type,
    is_scalar,
)


class TestIntType:
    def test_signed_range(self):
        t = IntType(8)
        assert t.min_value == -128
        assert t.max_value == 127

    def test_unsigned_range(self):
        t = IntType(8, signed=False)
        assert t.min_value == 0
        assert t.max_value == 255

    def test_wrap_positive_overflow(self):
        assert IntType(8).wrap(128) == -128

    def test_wrap_negative_overflow(self):
        assert IntType(8).wrap(-129) == 127

    def test_wrap_unsigned(self):
        assert IntType(2, signed=False).wrap(4) == 0
        assert IntType(2, signed=False).wrap(5) == 1

    def test_two_bit_counter_wraps_to_zero(self):
        """The paper's 2-bit loop counter: 3 + 1 wraps to 0."""
        t = IntType(2, signed=False)
        assert t.wrap(3 + 1) == 0

    def test_wrap_identity_in_range(self):
        t = IntType(6)
        for value in range(t.min_value, t.max_value + 1):
            assert t.wrap(value) == value

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_str(self):
        assert str(IntType(8)) == "int<8>"
        assert str(IntType(3, signed=False)) == "uint<3>"

    @given(st.integers(min_value=1, max_value=40), st.integers())
    def test_wrap_always_in_range(self, width, value):
        t = IntType(width)
        wrapped = t.wrap(value)
        assert t.min_value <= wrapped <= t.max_value

    @given(st.integers(min_value=1, max_value=40), st.integers())
    def test_wrap_idempotent(self, width, value):
        t = IntType(width, signed=False)
        assert t.wrap(t.wrap(value)) == t.wrap(value)

    @given(st.integers(min_value=2, max_value=30), st.integers(),
           st.integers())
    def test_wrap_is_ring_homomorphism(self, width, a, b):
        """(a + b) mod 2^w == (a mod 2^w + b mod 2^w) mod 2^w."""
        t = IntType(width)
        assert t.wrap(a + b) == t.wrap(t.wrap(a) + t.wrap(b))


class TestFixedType:
    def test_scale(self):
        assert FixedType(16, 8).scale == 256

    def test_quantize_exact(self):
        t = FixedType(16, 8)
        assert t.quantize(0.5) == 0.5
        assert t.quantize(1.25) == 1.25

    def test_quantize_rounds(self):
        t = FixedType(16, 2)  # grid 0.25
        assert t.quantize(0.3) == 0.25
        assert t.quantize(0.4) == 0.5

    def test_quantize_negative(self):
        t = FixedType(16, 2)
        assert t.quantize(-0.3) == -0.25

    def test_invalid_frac(self):
        with pytest.raises(ValueError):
            FixedType(8, 8)

    def test_str(self):
        assert str(FixedType(24, 16)) == "fixed<24,16>"

    @given(st.floats(min_value=-100, max_value=100,
                     allow_nan=False, allow_infinity=False))
    def test_quantize_idempotent(self, value):
        t = FixedType(24, 8)
        assert t.quantize(t.quantize(value)) == t.quantize(value)

    @given(st.floats(min_value=-100, max_value=100,
                     allow_nan=False, allow_infinity=False))
    def test_quantize_error_bound(self, value):
        t = FixedType(24, 8)
        assert abs(t.quantize(value) - value) <= 1 / (2 * t.scale) + 1e-12


class TestArrayType:
    def test_address_width(self):
        assert ArrayType(IntType(8), 16).address_width == 4
        assert ArrayType(IntType(8), 17).address_width == 5
        assert ArrayType(IntType(8), 1).address_width == 1

    def test_no_nested_arrays(self):
        with pytest.raises(ValueError):
            ArrayType(ArrayType(IntType(8), 4), 4)

    def test_bit_width(self):
        assert bit_width(ArrayType(IntType(8), 4)) == 32

    def test_str(self):
        assert str(ArrayType(IntType(8), 4)) == "int<8>[4]"


class TestCommonType:
    def test_same_type(self):
        assert common_type(IntType(8), IntType(8)) == IntType(8)

    def test_widening(self):
        assert common_type(IntType(8), IntType(16)) == IntType(16)

    def test_signed_sticky(self):
        t = common_type(IntType(8, signed=False), IntType(8, signed=True))
        assert t.signed

    def test_fixed_promotion(self):
        t = common_type(IntType(8), FixedType(16, 8))
        assert isinstance(t, FixedType)
        assert t.frac_bits == 8

    def test_array_rejected(self):
        with pytest.raises(TypeError):
            common_type(ArrayType(IntType(8), 4), IntType(8))


def test_bool_is_unsigned_bit():
    assert BOOL.width == 1
    assert not BOOL.signed


def test_is_scalar():
    assert is_scalar(IntType(8))
    assert is_scalar(FixedType(8, 4))
    assert not is_scalar(ArrayType(IntType(8), 4))
