"""Tests for the VHDL backend and a random-program transform property.

The random-program generator builds small straight-line BSL programs
from seeded expression trees; the property is that the *entire*
optimization pipeline preserves their behavior — the broadest
transform-correctness net in the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import synthesize
from repro.lang import compile_source
from repro.rtl import emit_vhdl
from repro.scheduling import ResourceConstraints
from repro.sim import check_behavioral_equivalence
from repro.workloads import SQRT_SOURCE, fir_source


class TestVHDL:
    def design(self):
        return synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )

    def test_entity_structure(self):
        text = emit_vhdl(self.design())
        assert "entity sqrt is" in text
        assert "architecture rtl of sqrt is" in text
        assert "in_X : in  signed(23 downto 0)" in text
        assert "out_Y : out signed(23 downto 0)" in text
        assert text.strip().endswith("end architecture rtl;")

    def test_state_enum_covers_fsm(self):
        design = self.design()
        text = emit_vhdl(design)
        for state in design.fsm.states:
            assert f"S{state.id}" in text
        assert "S_IDLE" in text

    def test_fixed_point_scaling(self):
        text = emit_vhdl(self.design())
        assert "shift_left" in text   # division pre-scaling
        assert "shift_right" in text  # the strength-reduced 0.5x

    def test_registers_declared(self):
        text = emit_vhdl(self.design())
        assert "signal r_Y : signed(23 downto 0)" in text
        assert "signal r_I : signed(1 downto 0)" in text

    def test_memories_as_array_types(self):
        design = synthesize(fir_source(4))
        text = emit_vhdl(design)
        assert "type c_mem_t is array (0 to 3)" in text
        assert "signal mem_c : c_mem_t" in text

    def test_case_balance(self):
        text = emit_vhdl(self.design())
        assert text.count("when ") >= self.design().fsm.state_count
        assert text.count("end case;") == 1


# ----------------------------------------------------------------------
# Random straight-line program generation
# ----------------------------------------------------------------------


def _expression(rng: list[int], depth: int, names: list[str]) -> str:
    """Deterministic expression tree from a digit stream."""
    pick = rng.pop() if rng else 0
    if depth <= 0 or pick % 4 == 0:
        leaf = pick % (len(names) + 3)
        if leaf < len(names):
            return names[leaf]
        return str((pick % 7) + 1)
    operator = ["+", "-", "*"][pick % 3]
    left = _expression(rng, depth - 1, names)
    right = _expression(rng, depth - 1, names)
    return f"({left} {operator} {right})"


def random_program(seed: int, statements: int = 4) -> str:
    state = seed & 0x7FFFFFFF or 1
    digits = []
    for _ in range(200):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        digits.append(state % 97)
    names = ["a", "b"]
    body = []
    for index in range(statements):
        target = f"t{index}"
        expression = _expression(digits, 3, names)
        body.append(f"  {target} := {expression};")
        names.append(target)
    body.append(f"  o := {names[-1]} + {names[2]};")
    declarations = ", ".join(f"t{i}" for i in range(statements))
    return (
        "procedure p(input a: int<16>; input b: int<16>; "
        "output o: int<16>);\n"
        f"var {declarations}: int<16>;\n"
        "begin\n" + "\n".join(body) + "\nend\n"
    )


class TestRandomProgramTransforms:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(1, 1_000_000))
    def test_full_pipeline_preserves_random_programs(self, seed):
        from repro.transforms import optimize

        source = random_program(seed)
        specification = compile_source(source)
        implementation = compile_source(source)
        optimize(implementation, tree_height=True)
        report = check_behavioral_equivalence(
            specification, implementation
        )
        assert report.equivalent

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(1, 1_000_000))
    def test_random_programs_synthesize_and_verify(self, seed):
        from repro.sim import check_equivalence

        source = random_program(seed, statements=3)
        design = synthesize(
            source, constraints=ResourceConstraints({"fu": 2})
        )
        assert check_equivalence(design).equivalent
