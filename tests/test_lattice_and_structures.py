"""Tests for the AR lattice workload and deeper structural transforms
(unrolling loops containing branches, cloned nested regions)."""


from repro.core import SynthesisOptions, synthesize, synthesize_cdfg
from repro.ir import OpKind
from repro.lang import compile_source
from repro.scheduling import (
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.sim import check_equivalence, run_behavior
from repro.transforms import LoopUnrolling, optimize
from repro.workloads import ar_lattice_cdfg


class TestARLattice:
    def test_op_mix(self):
        cdfg = ar_lattice_cdfg(4)
        kinds = [op.kind for op in cdfg.operations()]
        assert kinds.count(OpKind.MUL) == 8
        assert kinds.count(OpKind.ADD) == 4
        assert kinds.count(OpKind.SUB) == 4

    def test_reference_math(self):
        """Against a direct Python lattice with the same quantization."""
        from repro.ir.types import FixedType

        fmt = FixedType(24, 12)
        cdfg = ar_lattice_cdfg(2)
        inputs = {
            "x": 0.75, "k0": 0.5, "s0": 0.25, "k1": -0.25, "s1": 0.5,
        }
        out = run_behavior(cdfg, inputs)

        forward = fmt.quantize(0.75)
        states = [0.25, 0.5]
        ks = [0.5, -0.25]
        new_states = []
        for k, state in zip(ks, states):
            down = fmt.quantize(k * state)
            forward = fmt.quantize(forward - down)
            up = fmt.quantize(k * forward)
            new_states.append(fmt.quantize(state + up))
        assert out["y"] == forward
        assert out["so0"] == new_states[0]
        assert out["so1"] == new_states[1]

    def test_critical_path_alternates(self):
        """The lattice critical path interleaves mul and sub — its
        schedule under 1 mul / 1 add is longer than the FIR tree with
        the same op count would suggest."""
        cdfg = ar_lattice_cdfg(4)
        problem = SchedulingProblem.from_block(
            cdfg.blocks()[0],
            TypedFUModel(single_cycle=True),
            ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = ListScheduler(problem).schedule()
        schedule.validate()
        # Critical path: (mul, sub) per stage plus slack = >= 8.
        assert schedule.length >= 8

    def test_end_to_end(self):
        design = synthesize_cdfg(
            ar_lattice_cdfg(3),
            SynthesisOptions(
                model=TypedFUModel(),
                constraints=ResourceConstraints({"mul": 2, "add": 1}),
            ),
        )
        assert check_equivalence(design).equivalent


class TestStructuredUnrolling:
    def test_unroll_loop_containing_branch(self):
        source = """
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 0 to 3 do
  begin
    if a > 0 then
      b := b + a;
    else
      b := b - a;
  end;
end
"""
        cdfg = compile_source(source)
        expected = {
            a: run_behavior(cdfg, {"a": a})["b"] for a in (-3, 0, 5)
        }
        assert LoopUnrolling().run(cdfg)
        cdfg.validate()
        assert cdfg.loops() == []
        from repro.ir import IfRegion

        branches = [
            r for r in cdfg.body.walk() if isinstance(r, IfRegion)
        ]
        assert len(branches) == 4  # one clone per iteration
        for a, value in expected.items():
            assert run_behavior(cdfg, {"a": a})["b"] == value

    def test_unrolled_branchy_loop_synthesizes(self):
        source = """
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 0 to 2 do
    if a > i then b := b + 1;
end
"""
        design = synthesize(
            source,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 1}),
                unroll=True,
            ),
        )
        report = check_equivalence(
            design, vectors=[{"a": a} for a in (-1, 1, 3)]
        )
        assert report.equivalent

    def test_unroll_nested_constant_loops(self):
        source = """
procedure p(input a: int<8>; output b: int<16>);
var i, j: uint<3>;
begin
  b := 0;
  for i := 0 to 2 do
    for j := 0 to 1 do
      b := b + a;
end
"""
        cdfg = compile_source(source)
        expected = run_behavior(cdfg, {"a": 7})["b"]
        optimize(cdfg, unroll=True)
        cdfg.validate()
        assert cdfg.loops() == []
        assert run_behavior(cdfg, {"a": 7})["b"] == expected
