"""Recipe-based DFG generation, the shrinking reducer, and the fuzzer
front end (including repro-script artifacts).
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import SCHEDULERS
from repro.errors import SchedulingError
from repro.scheduling import ListScheduler
from repro.sim import BehavioralSimulator, default_vectors
from repro.verify import (
    check_seed,
    fuzz_seeds,
    recipe_fails,
    shrink_failure,
    write_repro_script,
)
from repro.workloads import (
    DFGRecipe,
    RandomDFGSpec,
    build_dfg,
    dfg_recipe,
    random_dfg,
    shrink_recipe,
)


class TestRecipes:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1234])
    def test_recipe_roundtrip_matches_random_dfg(self, seed):
        """random_dfg(spec) and build_dfg(dfg_recipe(spec)) are the
        same construction — same graph, same behavior."""
        spec = RandomDFGSpec(ops=12, seed=seed)
        direct = random_dfg(spec)
        rebuilt = build_dfg(dfg_recipe(spec))
        assert direct.name == rebuilt.name
        vectors = default_vectors(direct, count=3, seed=seed)
        for inputs in vectors:
            assert (BehavioralSimulator(direct).run(dict(inputs))
                    == BehavioralSimulator(rebuilt).run(dict(inputs)))

    def test_recipe_is_deterministic(self):
        spec = RandomDFGSpec(ops=10, seed=5)
        assert dfg_recipe(spec) == dfg_recipe(spec)

    def test_recipe_rejects_forward_reference(self):
        with pytest.raises(ValueError, match="reads pool index"):
            DFGRecipe(inputs=2, ops=(("ADD", 0, 5),))

    def test_recipe_rejects_unknown_kind(self):
        with pytest.raises(KeyError):
            DFGRecipe(inputs=2, ops=(("BOGUS", 0, 1),))

    def test_render_is_evaluable(self):
        recipe = dfg_recipe(RandomDFGSpec(ops=6, seed=3))
        rebuilt = eval(recipe.render(), {"DFGRecipe": DFGRecipe})
        assert rebuilt == recipe


def _has_mul(recipe: DFGRecipe) -> bool:
    return any(kind == "MUL" for kind, _, _ in recipe.ops)


class TestShrinker:
    def test_shrinks_to_single_op(self):
        """A failure predicate depending on one op kind shrinks to a
        one-op recipe."""
        recipe = dfg_recipe(RandomDFGSpec(ops=20, seed=2, mul_weight=2))
        assert _has_mul(recipe)
        shrunk = shrink_recipe(recipe, _has_mul)
        assert shrunk.op_count == 1
        assert _has_mul(shrunk)
        build_dfg(shrunk).validate()

    def test_result_is_locally_minimal(self):
        def fails(recipe: DFGRecipe) -> bool:
            muls = sum(1 for kind, _, _ in recipe.ops if kind == "MUL")
            return muls >= 2

        recipe = dfg_recipe(RandomDFGSpec(ops=18, seed=9, mul_weight=3))
        assert fails(recipe)
        shrunk = shrink_recipe(recipe, fails)
        assert fails(shrunk)
        assert shrunk.op_count == 2
        build_dfg(shrunk).validate()

    def test_never_returns_non_failing(self):
        recipe = dfg_recipe(RandomDFGSpec(ops=15, seed=4))
        shrunk = shrink_recipe(recipe, lambda r: r.op_count >= 5)
        assert shrunk.op_count == 5

    def test_shrink_failure_counts_attempts(self):
        recipe = dfg_recipe(RandomDFGSpec(ops=10, seed=6, mul_weight=2))
        result = shrink_failure(recipe, _has_mul)
        assert result.attempts > 0
        assert result.removed_ops == 10 - result.shrunk.op_count
        assert result.shrunk.op_count == 1


class _MulHatingScheduler(ListScheduler):
    """Injected bug: refuses any block containing a multiply."""

    def schedule(self):
        from repro.ir.opcodes import OpKind

        if any(op.kind is OpKind.MUL for op in self.problem.ops):
            raise SchedulingError("injected: cannot schedule MUL")
        return super().schedule()


class TestFuzzer:
    def test_clean_seeds_pass(self, tmp_path):
        report = fuzz_seeds(
            3, ops=8, artifacts_dir=str(tmp_path),
            schedulers=["list", "asap"], allocators=["left-edge"],
        )
        assert report.ok, report.render()
        assert report.seeds == [1, 2, 3]
        assert not list(tmp_path.iterdir())

    def test_check_seed_reports_failure_summary(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "mul-hater",
                            _MulHatingScheduler)
        ok, summary = check_seed(
            1, ops=12, schedulers=["mul-hater"],
            allocators=["left-edge"],
        )
        assert not ok
        assert "mul-hater" in summary and "scheduling" in summary

    def test_injected_bug_shrinks_to_small_repro(self, monkeypatch,
                                                 tmp_path):
        """Acceptance: an artificially injected scheduler bug fuzzed
        at jobs=1 yields a shrunk repro of at most 8 ops."""
        monkeypatch.setitem(SCHEDULERS, "mul-hater",
                            _MulHatingScheduler)
        report = fuzz_seeds(
            [2], ops=12, jobs=1, artifacts_dir=str(tmp_path),
            schedulers=["list", "mul-hater"],
            allocators=["left-edge"],
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.seed == 2
        assert failure.shrunk is not None
        assert failure.shrunk.op_count <= 8
        assert _has_mul(failure.shrunk)
        script = Path(failure.script_path)
        assert script.exists()
        text = script.read_text()
        assert "mul-hater" in text and "DFGRecipe" in text

    def test_repro_script_runs_standalone(self, tmp_path):
        """A generated script is a complete program: on a recipe whose
        failure no longer reproduces (real combos), it exits 0."""
        recipe = dfg_recipe(RandomDFGSpec(ops=5, seed=11))
        path = write_repro_script(
            recipe, ["list"], ["left-edge"],
            str(tmp_path / "repro_test.py"),
            notes="generated by test_repro_script_runs_standalone",
        )
        completed = subprocess.run(
            [sys.executable, path],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert completed.returncode == 0, completed.stderr
        assert "PASS" in completed.stdout

    def test_recipe_fails_helper(self, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "mul-hater",
                            _MulHatingScheduler)
        mul_recipe = DFGRecipe(inputs=2, ops=(("MUL", 0, 1),))
        add_recipe = DFGRecipe(inputs=2, ops=(("ADD", 0, 1),))
        assert recipe_fails(mul_recipe, ["mul-hater"], ["left-edge"])
        assert not recipe_fails(add_recipe, ["mul-hater"],
                                ["left-edge"])
