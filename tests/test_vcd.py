"""Tests for execution tracing and VCD emission."""

import pytest

from repro.core import synthesize
from repro.errors import SimulationError
from repro.scheduling import ResourceConstraints
from repro.sim import RTLSimulator, write_vcd
from repro.workloads import SQRT_SOURCE


def traced_run():
    design = synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
    )
    simulator = RTLSimulator(design, trace=True)
    simulator.run({"X": 0.25})
    return design, simulator


class TestTrace:
    def test_one_entry_per_cycle(self):
        _, simulator = traced_run()
        assert len(simulator.trace) == simulator.cycles == 10
        assert [e.cycle for e in simulator.trace] == list(range(1, 11))

    def test_registers_snapshot_isolated(self):
        """Snapshots are copies, not views of live state."""
        _, simulator = traced_run()
        first = simulator.trace[0].registers
        last = simulator.trace[-1].registers
        assert first[("var", "Y")] != last[("var", "Y")]

    def test_counter_visible_in_trace(self):
        """The 2-bit counter walks 1,2,3,0 through the loop."""
        _, simulator = traced_run()
        counter_values = [
            entry.registers[("var", "I")] for entry in simulator.trace
        ]
        # I increments at the end of each 2-step body pass.
        assert counter_values[-1] == 0  # wrapped at the end
        assert 3 in counter_values

    def test_tracing_off_by_default(self):
        design, _ = traced_run()
        simulator = RTLSimulator(design)
        simulator.run({"X": 0.25})
        assert simulator.trace == []


class TestVCD:
    def test_structure(self):
        design, simulator = traced_run()
        text = write_vcd(design, simulator.trace)
        assert "$timescale 1ns $end" in text
        assert "$var wire 24" in text      # the fixed<24,16> registers
        assert "fsm_state" in text
        assert "$enddefinitions $end" in text
        assert text.count("#") >= simulator.cycles  # one timestamp/cycle

    def test_final_y_value_encoded(self):
        design, simulator = traced_run()
        text = write_vcd(design, simulator.trace)
        # sqrt(0.25) = 0.5 -> 0.5 * 2^16 = 32768 = 0b1000000000000000.
        assert f"b{32768:024b}" in text

    def test_unchanged_signals_not_redumped(self):
        design, simulator = traced_run()
        text = write_vcd(design, simulator.trace)
        # X never changes after load: exactly one dump of its pattern.
        x_bits = format(int(0.25 * (1 << 16)), "024b")
        x_lines = [
            line for line in text.splitlines()
            if line.startswith(f"b{x_bits} ")
        ]
        # Y passes through many values; X's exact pattern appears once
        # (as X) — Y could coincide, so allow <= 2 but require >= 1.
        assert 1 <= len(x_lines) <= 2

    def test_empty_trace_rejected(self):
        design, _ = traced_run()
        with pytest.raises(SimulationError):
            write_vcd(design, [])

    def test_gtkwave_token_sanity(self):
        """Every change line is `b<binary> <id>` with a printable id."""
        design, simulator = traced_run()
        text = write_vcd(design, simulator.trace)
        for line in text.splitlines():
            if line.startswith("b"):
                bits, identifier = line[1:].split(" ")
                assert set(bits) <= {"0", "1"}
                assert identifier.isprintable()
