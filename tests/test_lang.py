"""Frontend tests: lexer, parser, semantic analysis and lowering."""

import pytest

from repro.errors import LexError, ParseError, SemanticError
from repro.ir import IntType, OpKind
from repro.ir.types import ArrayType, FixedType
from repro.lang import compile_source, parse, tokenize
from repro.lang.tokens import TokenKind


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("procedure foo while whilex")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.PROCEDURE,
            TokenKind.IDENT,
            TokenKind.WHILE,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_numbers(self):
        tokens = tokenize("42 3.25")
        assert tokens[0].kind == TokenKind.INT
        assert tokens[1].kind == TokenKind.REAL

    def test_operators(self):
        tokens = tokenize(":= <= >= /= << >> < >")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [
            TokenKind.ASSIGN, TokenKind.LE, TokenKind.GE, TokenKind.NE,
            TokenKind.SHL, TokenKind.SHR, TokenKind.LT, TokenKind.GT,
        ]

    def test_line_comments(self):
        tokens = tokenize("a -- comment\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_brace_comments(self):
        tokens = tokenize("a { comment\nspanning lines } b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_brace_comment(self):
        with pytest.raises(LexError):
            tokenize("a { never closed")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_locations(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_empty_input(self):
        tokens = tokenize("")
        assert tokens[0].kind is TokenKind.EOF


MINIMAL = """
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a;
end
"""


class TestParser:
    def test_minimal_procedure(self):
        program = parse(MINIMAL)
        proc = program.procedures[0]
        assert proc.name == "p"
        assert [p.direction for p in proc.params] == ["input", "output"]

    def test_precedence_mul_over_add(self):
        program = parse("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + a * a;
end
""")
        assign = program.procedures[0].body[0]
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_parentheses(self):
        program = parse("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := (a + a) * a;
end
""")
        assign = program.procedures[0].body[0]
        assert assign.value.op == "*"

    def test_types(self):
        program = parse("""
procedure p(input a: fixed<16,8>; output b: uint<4>);
var m: int<8>[32];
begin
  b := 0;
end
""")
        proc = program.procedures[0]
        assert proc.params[0].type == FixedType(16, 8)
        assert proc.params[1].type == IntType(4, signed=False)
        assert proc.decls[0].type == ArrayType(IntType(8), 32)

    def test_control_statements(self):
        program = parse("""
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  if a > 0 then b := 1 else b := 2;
  while a > 0 do b := b + 1;
  repeat b := b - 1; until b = 0;
  for i := 0 to 7 do b := b + i;
end
""")
        body = program.procedures[0].body
        assert len(body) == 4

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("procedure p() begin end")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse("""
procedure p(input a: int<8>; output b: int<8>);
begin
  42 := a;
end
""")

    def test_multiple_procedures(self):
        program = parse(MINIMAL + MINIMAL.replace("p(", "q("))
        assert [p.name for p in program.procedures] == ["p", "q"]


class TestLowering:
    def test_minimal(self):
        cdfg = compile_source(MINIMAL)
        assert cdfg.name == "p"
        assert len(cdfg.blocks()) == 1

    def test_block_local_renaming(self):
        """A variable assigned then read in one block wires directly —
        only upward-exposed reads become VAR_READ ops."""
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  t := a + 1;
  b := t + t;
end
""")
        block = cdfg.blocks()[0]
        reads = [op.attrs["var"] for op in block.ops
                 if op.kind is OpKind.VAR_READ]
        assert reads == ["a"]

    def test_var_read_deduplicated(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a + a;
end
""")
        block = cdfg.blocks()[0]
        reads = [op for op in block.ops if op.kind is OpKind.VAR_READ]
        assert len(reads) == 1

    def test_literal_adopts_context_type(self):
        cdfg = compile_source("""
procedure p(input a: uint<3>; output b: uint<3>);
begin
  b := a + 1;
end
""")
        block = cdfg.blocks()[0]
        const = next(op for op in block.ops if op.kind is OpKind.CONST)
        assert const.result.type == IntType(3, signed=False)

    def test_real_literal_quantized(self):
        cdfg = compile_source("""
procedure p(input a: fixed<16,4>; output b: fixed<16,4>);
begin
  b := a * 0.3;
end
""")
        const = next(
            op for op in cdfg.blocks()[0].ops if op.kind is OpKind.CONST
        )
        assert const.attrs["value"] == pytest.approx(0.3125)

    def test_repeat_until_shape(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  repeat
    b := b + 1;
  until b > a;
end
""")
        loop = cdfg.loops()[0]
        assert loop.test_in_body
        assert loop.exit_on_true
        # The exit comparison lives inside the body's block.
        assert loop.cond.producer.block is loop.test_block

    def test_while_shape(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := 0;
  while b < a do b := b + 1;
end
""")
        loop = cdfg.loops()[0]
        assert not loop.test_in_body
        assert not loop.exit_on_true

    def test_for_has_trip_count(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 0 to 9 do b := b + a;
end
""")
        assert cdfg.loops()[0].trip_count == 10

    def test_for_downto(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var i: int<8>;
begin
  b := 0;
  for i := 9 downto 2 do b := b + a;
end
""")
        assert cdfg.loops()[0].trip_count == 8

    def test_if_else_regions(self):
        from repro.ir import IfRegion

        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a > 0 then b := 1 else b := 2;
end
""")
        regions = [r for r in cdfg.body.walk() if isinstance(r, IfRegion)]
        assert len(regions) == 1
        assert regions[0].else_region is not None

    def test_arrays_lower_to_load_store(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var m: int<8>[4];
begin
  m[0] := a;
  b := m[0];
end
""")
        kinds = [op.kind for op in cdfg.blocks()[0].ops]
        assert OpKind.STORE in kinds
        assert OpKind.LOAD in kinds

    def test_inlining(self):
        cdfg = compile_source("""
procedure double(input x: int<8>; output y: int<8>);
begin
  y := x + x;
end

procedure main(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  double(a, t);
  b := t + 1;
end
""", procedure="main")
        # The callee's body was expanded inline: no call remains, and
        # mangled variables exist.
        assert any("double$" in name for name in cdfg.variables)

    def test_recursion_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure loop(input a: int<8>; output b: int<8>);
begin
  loop(a, b);
end
""")

    def test_wrong_arity_call(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure f(input x: int<8>; output y: int<8>);
begin
  y := x;
end

procedure main(input a: int<8>; output b: int<8>);
begin
  f(a);
end
""", procedure="main")


class TestSemanticErrors:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := nope;
end
""")

    def test_assign_to_input(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  a := 1;
end
""")

    def test_array_without_index(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var m: int<8>[4];
begin
  b := m;
end
""")

    def test_index_on_scalar(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a[0];
end
""")

    def test_condition_must_be_boolean(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if a then b := 1;
end
""")

    def test_not_needs_boolean(self):
        with pytest.raises(SemanticError):
            compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  if not a then b := 1;
end
""")
