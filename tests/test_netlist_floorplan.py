"""Tests for the structural netlist, floorplanning, wiring estimation
and testbench emission."""

import pytest

from repro.core import SynthesisOptions, synthesize, synthesize_cdfg
from repro.datapath import build_netlist
from repro.errors import HLSError
from repro.estimation import estimate_wiring, place_linear
from repro.rtl import emit_testbench
from repro.scheduling import ResourceConstraints, TypedFUModel
from repro.sim import default_vectors
from repro.workloads import SQRT_SOURCE, ewf_cdfg


def sqrt_design():
    return synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
    )


def ewf_design():
    return synthesize_cdfg(
        ewf_cdfg(),
        SynthesisOptions(
            model=TypedFUModel(),
            constraints=ResourceConstraints({"add": 2, "mul": 1}),
        ),
    )


class TestNetlist:
    def test_components_present(self):
        netlist = build_netlist(sqrt_design())
        assert netlist.fu_count >= 2
        assert netlist.register_count >= 3
        assert netlist.net_count > 0

    def test_mux_wherever_multiple_sources(self):
        netlist = build_netlist(sqrt_design())
        # Every mux has at least two input nets and one output net.
        for mux in netlist.components_of_kind("mux"):
            inputs = [
                net for net in netlist.nets
                if net.sinks
                and net.sinks[0].component is mux
            ]
            outputs = [
                net for net in netlist.nets
                if net.driver.component is mux
            ]
            assert len(inputs) >= 2
            assert len(outputs) == 1

    def test_memories_in_netlist(self):
        from repro.workloads import fir_source

        design = synthesize(fir_source(4))
        netlist = build_netlist(design)
        names = {c.name for c in netlist.components_of_kind("memory")}
        assert names == {"mem_c", "mem_s"}

    def test_stats_and_dot(self):
        netlist = build_netlist(sqrt_design())
        assert "FUs" in netlist.stats()
        dot = netlist.dot()
        assert "digraph datapath" in dot
        for component in netlist.components.values():
            assert component.name in dot


class TestFloorplan:
    def test_placement_is_permutation(self):
        netlist = build_netlist(ewf_design())
        floorplan = place_linear(netlist)
        slots = sorted(floorplan.slots.values())
        assert slots == list(range(len(netlist.components)))

    def test_placement_deterministic(self):
        netlist = build_netlist(ewf_design())
        a = place_linear(netlist)
        b = place_linear(build_netlist(ewf_design()))
        assert a.slots == b.slots

    def test_barycentric_no_worse_than_alphabetical(self):
        from repro.estimation.floorplan import Floorplan

        netlist = build_netlist(ewf_design())
        placed = place_linear(netlist)
        naive = Floorplan(
            {name: i for i, name in enumerate(sorted(netlist.components))}
        )

        def wirelength(floorplan):
            total = 0
            for net in netlist.nets:
                for sink in net.sinks:
                    total += floorplan.distance(
                        net.driver.component.name, sink.component.name
                    )
            return total

        assert wirelength(placed) <= wirelength(naive)


class TestWiring:
    def test_bus_wiring_less_than_mux_on_ewf(self):
        """§2: buses 'offer the advantage of requiring less wiring'."""
        design = ewf_design()
        estimate = estimate_wiring(design)
        assert estimate.bus_wire_length < estimate.mux_wire_length
        assert estimate.bus_count >= 1
        assert "wiring" in estimate.report()

    def test_wiring_positive_on_sqrt(self):
        estimate = estimate_wiring(sqrt_design())
        assert estimate.mux_wire_length > 0
        assert estimate.bus_wire_length > 0


class TestTestbench:
    def test_structure(self):
        design = sqrt_design()
        vectors = default_vectors(design.cdfg, count=3)
        text = emit_testbench(design, vectors)
        assert "module tb_sqrt;" in text
        assert text.count("run_vector;") == 3 + 1  # 3 calls + task decl
        assert "ALL TESTS PASS" in text
        assert "$finish" in text

    def test_expected_values_are_exact_bits(self):
        design = sqrt_design()
        text = emit_testbench(design, [{"X": 0.25}])
        # sqrt(0.25) = 0.5 → 0.5 * 2^16 = 32768 in fixed<24,16>.
        assert "24'd32768" in text

    def test_memory_designs_rejected(self):
        from repro.workloads import fir_source

        design = synthesize(fir_source(4))
        with pytest.raises(HLSError):
            emit_testbench(design, [{"x": 1.0}])
