"""Unit tests for the fault-tolerant task runtime (repro.exec).

Every failure path is driven by the deterministic fault injector
(``docs/resilience.md``), so these tests exercise the exact code that
runs when a real worker crashes, hangs, or errors out — no
monkeypatching of ``concurrent.futures`` internals.
"""

import pickle

import pytest

from repro import obs
from repro.exec import (
    FaultEntry,
    InjectedFault,
    TaskFailure,
    default_timeout_s,
    parse_fault_spec,
    run_tasks,
)

pytestmark = pytest.mark.fault_smoke


def double(payload):
    return payload * 2


def counters():
    return obs.metrics().counters()


# ---------------------------------------------------------------- happy path


def test_healthy_batch_returns_values_in_order():
    batch = run_tasks(double, [1, 2, 3, 4], max_workers=2)
    assert batch.ok
    assert batch.values() == [2, 4, 6, 8]
    assert batch.failures == []
    assert [o.label for o in batch.outcomes] == ["0", "1", "2", "3"]
    got = counters()
    assert got["exec.tasks.completed"] == 4
    assert got["exec.tasks.submitted"] == 4
    assert got.get("exec.tasks.failed", 0) == 0


def test_batch_runs_under_an_exec_batch_span():
    with obs.tracing():
        run_tasks(double, [1, 2], max_workers=2)
    names = [r.name for r in obs.tracer().records()]
    assert "exec.batch" in names


# ------------------------------------------------------------- input checks


@pytest.mark.parametrize("bad", [0, -1])
def test_worker_count_must_be_positive(bad):
    with pytest.raises(ValueError, match="max_workers"):
        run_tasks(double, [1], max_workers=bad)


def test_labels_must_align_with_payloads():
    with pytest.raises(ValueError, match="labels"):
        run_tasks(double, [1, 2], labels=["only-one"], max_workers=2)


def test_negative_max_retries_rejected():
    with pytest.raises(ValueError, match="max_retries"):
        run_tasks(double, [1], max_workers=1, max_retries=-1)


# ------------------------------------------------------------ crash recovery


def test_crash_exhausts_retries_then_falls_back():
    """A deterministically crashing task is retried, quarantined, and
    redone by the parent-side fallback; the healthy tasks are kept."""
    calls = []

    def fallback(payload, index):
        calls.append(index)
        return double(payload)

    # max_workers=1 keeps the crash's blast radius deterministic: a
    # BrokenProcessPool fails every in-flight future, so with a wider
    # pool an innocent co-tenant could absorb attempt penalties too.
    batch = run_tasks(
        double, [1, 2, 3, 4], max_workers=1, max_retries=1,
        fallback=fallback, fault_spec="crash:2",
    )
    assert batch.ok
    assert batch.values() == [2, 4, 6, 8]
    assert calls == [2]
    crashed = batch.outcomes[2]
    assert crashed.degraded
    assert crashed.attempts == 2  # initial + one retry
    assert not batch.outcomes[0].degraded
    got = counters()
    assert got["exec.tasks.crashed"] >= 2
    assert got["exec.pool.respawns"] >= 1
    assert got["exec.tasks.degraded"] == 1


def test_crash_without_fallback_is_a_structured_failure():
    batch = run_tasks(
        double, [1, 2, 3], max_workers=1, max_retries=1,
        fault_spec="crash:1",
    )
    assert not batch.ok
    assert batch.values() == [2, 6]
    (failure,) = batch.failures
    assert failure.kind == "crash"
    assert failure.label == "1"
    assert failure.attempts == 2
    assert "task 1: crash after 2 attempts" in failure.render()
    assert counters()["exec.tasks.failed"] == 1


# ----------------------------------------------------------------- timeouts


def test_hung_task_times_out_and_falls_back(monkeypatch):
    """A hang costs its timeout budget, not the injected hang length,
    and only the hung task is redone."""
    monkeypatch.setenv("REPRO_FAULT_HANG_S", "30")
    batch = run_tasks(
        double, [1, 2, 3], max_workers=2, timeout_s=1.0, max_retries=0,
        fallback=lambda payload, index: double(payload),
        fault_spec="hang:1",
    )
    assert batch.ok
    assert batch.values() == [2, 4, 6]
    assert batch.outcomes[1].degraded
    got = counters()
    assert got["exec.tasks.timeout"] == 1
    assert got["exec.tasks.degraded"] == 1
    # Timeouts are quarantined directly, never resubmitted to the pool.
    assert got.get("exec.tasks.retried", 0) == 0


# ------------------------------------------------------------ genuine errors


def test_genuine_error_surfaces_once_with_worker_traceback():
    """An exception from the task function is final: reported with the
    original worker traceback and never re-executed anywhere."""
    calls = []

    def fallback(payload, index):  # pragma: no cover - must not run
        calls.append(index)
        return double(payload)

    batch = run_tasks(
        double, [1, 2, 3], max_workers=2, fallback=fallback,
        fault_spec="error:0",
    )
    assert not batch.ok
    assert batch.values() == [4, 6]
    assert calls == []
    (failure,) = batch.failures
    assert failure.kind == "error"
    assert failure.attempts == 1
    assert "InjectedFault" in failure.message
    assert failure.traceback is not None
    assert "InjectedFault" in failure.traceback
    got = counters()
    assert got["exec.tasks.errors"] == 1
    assert got.get("exec.tasks.retried", 0) == 0


# ------------------------------------------------------- unpicklable results


def test_unpicklable_result_retries_then_falls_back():
    batch = run_tasks(
        double, [1, 2], max_workers=2, max_retries=1,
        fallback=lambda payload, index: double(payload),
        fault_spec="unpicklable:0",
    )
    assert batch.ok
    assert batch.values() == [2, 4]
    assert batch.outcomes[0].degraded
    got = counters()
    assert got["exec.tasks.unpicklable"] >= 2
    assert got["exec.tasks.degraded"] == 1


# ------------------------------------------------------- fallback misbehaves


def test_fallback_failure_is_reported_not_raised():
    def fallback(payload, index):
        raise RuntimeError("fallback exploded")

    batch = run_tasks(
        double, [1, 2], max_workers=1, max_retries=0,
        fallback=fallback, fault_spec="crash:0",
    )
    assert not batch.ok
    assert batch.values() == [4]
    (failure,) = batch.failures
    assert failure.kind == "crash"
    assert "serial fallback failed" in failure.message
    assert "fallback exploded" in failure.message


# --------------------------------------------------------- pool unavailable


def test_no_subprocess_support_degrades_to_parent(monkeypatch):
    """Environments that cannot spawn processes run every task in the
    parent — the legacy serial path — even without a fallback."""

    class NoPool:
        def __init__(self, *args, **kwargs):
            raise OSError("no subprocess support here")

    monkeypatch.setattr("repro.exec.runtime.ProcessPoolExecutor", NoPool)
    batch = run_tasks(double, [1, 2, 3], max_workers=2)
    assert batch.ok
    assert batch.values() == [2, 4, 6]
    assert all(o.degraded for o in batch.outcomes)
    got = counters()
    assert got["exec.tasks.degraded"] == 3
    assert got.get("exec.tasks.submitted", 0) == 0


def test_pool_unavailable_fault_injection_still_fires(monkeypatch):
    """The parent-side degrade path still honours parent/any-scoped
    error faults via the fallback the caller provided."""

    class NoPool:
        def __init__(self, *args, **kwargs):
            raise OSError("no subprocess support here")

    monkeypatch.setattr("repro.exec.runtime.ProcessPoolExecutor", NoPool)
    # worker-scoped faults must NOT fire in the parent degrade path
    batch = run_tasks(double, [1, 2], max_workers=2,
                      fault_spec="error:0:worker")
    assert batch.ok and batch.values() == [2, 4]


# ------------------------------------------------------------ fault parsing


def test_parse_fault_spec_grammar():
    assert parse_fault_spec(None) == ()
    assert parse_fault_spec("") == ()
    assert parse_fault_spec("crash") == (FaultEntry("crash", "*", "worker"),)
    assert parse_fault_spec("hang:3:any") == (FaultEntry("hang", "3", "any"),)
    assert parse_fault_spec("crash:2, error:*:parent") == (
        FaultEntry("crash", "2", "worker"),
        FaultEntry("error", "*", "parent"),
    )


@pytest.mark.parametrize("bad", ["explode", "crash:1:everywhere",
                                 "crash:1:worker:extra"])
def test_parse_fault_spec_rejects_malformed_entries(bad):
    with pytest.raises(ValueError):
        parse_fault_spec(bad)


def test_fault_entry_scope_matching():
    worker_only = FaultEntry("crash", "7", "worker")
    assert worker_only.matches("7", in_worker=True)
    assert not worker_only.matches("7", in_worker=False)
    assert not worker_only.matches("8", in_worker=True)
    anywhere = FaultEntry("error", "*", "any")
    assert anywhere.matches("anything", in_worker=False)


def test_injected_error_fires_in_parent_scope():
    from repro.exec import maybe_inject

    with pytest.raises(InjectedFault):
        maybe_inject("x", "error:x:parent")
    maybe_inject("x", "error:x:worker")  # wrong scope: no-op
    maybe_inject("y", "error:x:parent")  # wrong label: no-op


# ------------------------------------------------------------- env plumbing


def test_default_timeout_env(monkeypatch):
    monkeypatch.delenv("REPRO_TASK_TIMEOUT_S", raising=False)
    assert default_timeout_s() is None
    monkeypatch.setenv("REPRO_TASK_TIMEOUT_S", "2.5")
    assert default_timeout_s() == 2.5
    monkeypatch.setenv("REPRO_TASK_TIMEOUT_S", "0")
    assert default_timeout_s() is None
    monkeypatch.setenv("REPRO_TASK_TIMEOUT_S", "junk")
    assert default_timeout_s() is None


def test_task_failure_is_picklable_and_renders():
    failure = TaskFailure(label="5", index=4, kind="timeout",
                          message="exceeded 3s", attempts=1)
    assert pickle.loads(pickle.dumps(failure)) == failure
    assert failure.render() == "task 5: timeout after 1 attempt: exceeded 3s"
