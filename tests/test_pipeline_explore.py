"""Tests for pipeline synthesis (Sehwa), DSE, estimation and binding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binding import Component, ComponentLibrary
from repro.core import SynthesisOptions, synthesize
from repro.errors import BindingError, SchedulingError
from repro.estimation import estimate_area, estimate_clock_period, estimate_timing
from repro.explore import explore_fu_range, measure_cycles
from repro.ir import OpKind
from repro.pipeline import (
    ModuloScheduler,
    explore_pipeline,
    find_best_pipeline,
    minimum_initiation_interval,
)
from repro.scheduling import (
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import (
    RandomDFGSpec,
    SQRT_SOURCE,
    fir_block_cdfg,
    random_dfg,
)


def fir_problem(constraints, taps=8, mul_delay=2):
    cdfg = fir_block_cdfg(taps)
    return SchedulingProblem.from_block(
        cdfg.blocks()[0],
        TypedFUModel(delays={"mul": mul_delay}),
        constraints,
    )


class TestPipeline:
    def test_mii_bound(self):
        problem = fir_problem(ResourceConstraints({"mul": 2, "add": 1}))
        # 8 muls x 2 cycles on 2 units = 8; 7 adds on 1 unit = 7.
        assert minimum_initiation_interval(problem) == 8

    def test_best_pipeline_hits_bound(self):
        problem = fir_problem(ResourceConstraints({"mul": 2, "add": 1}))
        schedule = find_best_pipeline(problem)
        schedule.validate()
        assert schedule.initiation_interval == 8

    def test_modulo_usage_within_limits(self):
        problem = fir_problem(ResourceConstraints({"mul": 4, "add": 2}))
        schedule = find_best_pipeline(problem)
        for (slot, cls), used in schedule.modulo_usage().items():
            assert used <= problem.constraints.limit(cls)
            del slot

    def test_more_units_never_slower(self):
        """Sehwa's trade-off: adding hardware weakly improves II."""
        previous = None
        for muls in (1, 2, 4, 8):
            problem = fir_problem(
                ResourceConstraints({"mul": muls, "add": 2})
            )
            schedule = find_best_pipeline(problem)
            if previous is not None:
                assert schedule.initiation_interval <= previous
            previous = schedule.initiation_interval

    def test_throughput_definition(self):
        problem = fir_problem(ResourceConstraints({"mul": 2, "add": 1}))
        schedule = find_best_pipeline(problem)
        assert schedule.throughput == pytest.approx(
            1 / schedule.initiation_interval
        )

    def test_infeasible_ii_raises(self):
        problem = fir_problem(ResourceConstraints({"mul": 1, "add": 1}))
        scheduler = ModuloScheduler(problem, initiation_interval=1)
        with pytest.raises(SchedulingError):
            scheduler.schedule().validate()

    def test_explore_table(self):
        points = explore_pipeline(
            lambda constraints: fir_problem(constraints),
            [{"mul": 1, "add": 1}, {"mul": 2, "add": 1},
             {"mul": 4, "add": 2}],
        )
        assert len(points) == 3
        intervals = [p.initiation_interval for p in points]
        assert intervals == sorted(intervals, reverse=True)
        assert all(p.row() for p in points)

    def test_latency_at_least_critical_path(self):
        problem = fir_problem(ResourceConstraints({"mul": 8, "add": 4}))
        schedule = find_best_pipeline(problem)
        assert schedule.length >= problem.critical_path()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(1, 1000))
    def test_pipeline_valid_on_random_dfgs(self, seed):
        cdfg = random_dfg(RandomDFGSpec(ops=15, seed=seed))
        problem = SchedulingProblem.from_block(
            cdfg.blocks()[0],
            TypedFUModel(single_cycle=True),
            ResourceConstraints({"add": 1, "mul": 1}),
        )
        schedule = find_best_pipeline(problem)
        schedule.validate()
        assert (
            schedule.initiation_interval
            >= minimum_initiation_interval(problem)
        )


class TestEstimation:
    def test_area_breakdown_positive(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        area = estimate_area(design)
        assert area.functional_units > 0
        assert area.registers > 0
        assert area.controller > 0
        assert area.total == pytest.approx(
            area.functional_units + area.registers
            + area.multiplexers + area.controller
        )

    def test_clock_period_covers_components(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        assert estimate_clock_period(design) >= (
            design.binding.max_delay_ns()
        )

    def test_timing_latency(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        timing = estimate_timing(design, cycles=10)
        assert timing.latency_ns == pytest.approx(timing.clock_ns * 10)
        assert "clock" in timing.report()


class TestExplore:
    def test_fu_sweep(self):
        result = explore_fu_range(SQRT_SOURCE, [1, 2])
        assert len(result.points) == 2
        one, two = result.points
        assert one.cycles > two.cycles  # more FUs, fewer steps
        assert result.table()

    def test_pareto_front_nonempty_and_nondominated(self):
        result = explore_fu_range(SQRT_SOURCE, [1, 2, 3])
        front = result.pareto
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (
                    b.area <= a.area
                    and b.latency_ns <= a.latency_ns
                    and (b.area < a.area or b.latency_ns < a.latency_ns)
                )

    def test_measure_cycles_uses_worst_case(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        assert measure_cycles(design, [{"X": 0.5}]) == 10


class TestBinding:
    def test_cheapest_component_chosen(self):
        library = ComponentLibrary()
        component = library.cheapest_for({OpKind.INC}, 8)
        assert component.name == "inc"

    def test_mixed_kinds_need_alu(self):
        library = ComponentLibrary()
        component = library.cheapest_for(
            {OpKind.ADD, OpKind.LT}, 8
        )
        assert component.name == "alu"

    def test_unsupported_kinds_raise(self):
        library = ComponentLibrary(
            [Component("add_only", frozenset({OpKind.ADD}), 7.0)]
        )
        with pytest.raises(BindingError):
            library.cheapest_for({OpKind.MUL}, 8)

    def test_library_without_incrementer_falls_back(self):
        """§2: libraries 'can prevent efficient solutions' — without an
        incrementer the INC op binds to a full adder."""
        no_inc = ComponentLibrary(
            [c for c in ComponentLibrary() if c.name != "inc"]
        )
        component = no_inc.cheapest_for({OpKind.INC}, 8)
        assert component.name == "add"

    def test_binding_merge_unions_kinds(self):
        design = synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        )
        binding = design.binding
        assert binding is not None
        # The universal FU carries div/add/mul kinds merged over blocks.
        universal = [
            fu for fu, comp in binding.components.items()
            if comp.name == "universal"
        ]
        assert universal
        assert binding.area() > 0

    def test_custom_library_in_engine(self):
        tiny = ComponentLibrary(
            [
                Component("super", frozenset(OpKind), 1.0,
                          delay_ns=5.0),
            ]
        )
        design = synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 2}),
                library=tiny,
            ),
        )
        assert all(
            comp.name == "super"
            for comp in design.binding.components.values()
        )

    def test_component_area_scales_with_width(self):
        library = ComponentLibrary()
        add = library.component("add")
        assert add.area(32) > add.area(8)
