"""The observability layer: tracer, metrics registry, exporters.

Covers the `repro.obs` primitives in isolation plus their integration
with the engine: span nesting/ordering for a full synthesis run, the
six pipeline stages in the Chrome export, registry-backed cache
stats, and the off-by-default contract.
"""

import json

import pytest

from repro import obs
from repro.core import (
    SynthesisCache,
    SynthesisOptions,
    synthesis_cache,
    synthesize,
)
from repro.core.design import SynthesizedDesign
from repro.explore import explore_fu_range
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE

TWO_FU = SynthesisOptions(constraints=ResourceConstraints({"fu": 2}))


class TestTracerCore:
    def test_disabled_by_default_records_nothing(self):
        with obs.trace_span("anything", key="value") as span:
            span.set(more="attrs")
        assert obs.tracer().records() == []
        assert not obs.tracing_enabled()

    def test_null_span_is_shared_singleton(self):
        assert obs.trace_span("a") is obs.trace_span("b")
        assert obs.trace_span("a") is obs.NULL_SPAN

    def test_nesting_depth_and_parent_links(self):
        with obs.tracing():
            with obs.trace_span("outer"):
                with obs.trace_span("middle"):
                    with obs.trace_span("inner"):
                        pass
                with obs.trace_span("sibling"):
                    pass
        outer, middle, inner, sibling = obs.tracer().records()
        assert [r.name for r in (outer, middle, inner, sibling)] == [
            "outer", "middle", "inner", "sibling"
        ]
        assert (outer.depth, middle.depth, inner.depth,
                sibling.depth) == (0, 1, 2, 1)
        assert outer.parent is None
        assert middle.parent == outer.index
        assert inner.parent == middle.index
        assert sibling.parent == outer.index

    def test_records_are_in_start_order_with_durations(self):
        with obs.tracing():
            with obs.trace_span("a"):
                with obs.trace_span("b"):
                    pass
        a, b = obs.tracer().records()
        assert a.start_us <= b.start_us
        assert a.duration_us >= b.duration_us > 0.0

    def test_attrs_and_set(self):
        with obs.tracing():
            with obs.trace_span("s", x=1) as span:
                span.set(y=2)
        (record,) = obs.tracer().records()
        assert record.attrs == {"x": 1, "y": 2}

    def test_scope_restores_previous_flag(self):
        assert not obs.tracing_enabled()
        with obs.tracing():
            assert obs.tracing_enabled()
            with obs.tracing(False):
                assert not obs.tracing_enabled()
            assert obs.tracing_enabled()
        assert not obs.tracing_enabled()

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        obs.reset_tracing()
        assert obs.tracing_enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        obs.reset_tracing()
        assert not obs.tracing_enabled()

    def test_merge_grafts_children_under_parent(self):
        with obs.tracing():
            with obs.trace_span("worker.root"):
                with obs.trace_span("worker.child"):
                    pass
        child_records = obs.tracer().records()
        obs.reset_tracing()

        with obs.tracing():
            with obs.trace_span("sweep"):
                parent = obs.tracer().current_index()
                obs.tracer().merge(child_records, parent=parent)
        sweep, root, child = obs.tracer().records()
        assert sweep.name == "sweep"
        assert root.parent == sweep.index and root.depth == 1
        assert child.parent == root.index and child.depth == 2


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7.5)
        registry.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        registry.histogram("h").observe(5.0)
        registry.histogram("h").observe(50.0)
        assert registry.counters() == {"c": 3}
        assert registry.gauges() == {"g": 7.5}
        hist = registry.histograms()["h"]
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.mean == pytest.approx(55.5 / 3)

    def test_labels_render_sorted_and_distinct(self):
        registry = obs.MetricsRegistry()
        registry.counter("n", b="2", a="1").inc()
        registry.counter("n", a="1", b="2").inc()
        registry.counter("n", a="9").inc()
        assert registry.counters() == {"n{a=1,b=2}": 2, "n{a=9}": 1}

    def test_snapshot_merge_roundtrip(self):
        worker = obs.MetricsRegistry()
        worker.counter("c").inc(4)
        worker.gauge("g").set(3.0)
        worker.histogram("h").observe(2.0)
        snapshot = worker.snapshot()

        parent = obs.MetricsRegistry()
        parent.counter("c").inc()
        parent.gauge("g").set(5.0)
        parent.merge(snapshot)
        parent.merge(snapshot)
        assert parent.counters()["c"] == 9
        assert parent.gauges()["g"] == 5.0  # max wins
        assert parent.histograms()["h"].count == 2

    def test_merge_is_deterministic(self):
        snapshots = []
        for value in (1, 2, 3):
            registry = obs.MetricsRegistry()
            registry.counter("c").inc(value)
            registry.gauge("g").set(float(value))
            snapshots.append(registry.snapshot())
        merged_a = obs.MetricsRegistry()
        merged_b = obs.MetricsRegistry()
        for snapshot in snapshots:
            merged_a.merge(snapshot)
        for snapshot in snapshots:
            merged_b.merge(snapshot)
        assert merged_a.snapshot() == merged_b.snapshot()

    def test_mismatched_histogram_boundaries_rejected(self):
        worker = obs.MetricsRegistry()
        worker.histogram("h", buckets=(1.0,)).observe(0.5)
        parent = obs.MetricsRegistry()
        parent.histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_reset_keeps_registered_objects_alive(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counters() == {"c": 1}


class TestEngineTracing:
    def test_traced_synthesis_has_all_pipeline_stages(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        names = {r.name for r in obs.tracer().records()}
        assert set(obs.CORE_STAGES) <= names
        assert "synthesize" in names and "datapath" in names

    def test_stage_spans_nest_under_synthesize_root(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        records = obs.tracer().records()
        (root,) = [r for r in records if r.parent is None]
        assert root.name == "synthesize"
        for record in records:
            if record.name in obs.CORE_STAGES:
                assert record.depth >= 1

    def test_options_trace_is_scoped_to_the_run(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        assert not obs.tracing_enabled()
        before = len(obs.tracer().records())
        synthesize(SQRT_SOURCE, options=TWO_FU)
        assert len(obs.tracer().records()) == before

    def test_trace_flag_does_not_fork_cache_entries(self):
        traced = SynthesisOptions(trace=True)
        untraced = SynthesisOptions()
        assert traced.cache_key() == untraced.cache_key()

    def test_transform_passes_traced(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        records = obs.tracer().records()
        passes = [r for r in records if r.name.startswith("pass.")]
        assert passes
        (transforms,) = [r for r in records if r.name == "transforms"]
        assert all(p.parent == transforms.index for p in passes)

    def test_verify_contracts_traced(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}),
            trace=True, verify=True,
        ))
        names = [r.name for r in obs.tracer().records()]
        for stage in ("scheduling", "allocation", "binding",
                      "controller", "netlist"):
            assert f"contract.{stage}" in names

    def test_scheduler_metrics_recorded(self):
        synthesize(SQRT_SOURCE, options=TWO_FU)
        counters = obs.metrics().counters()
        assert counters["scheduler.invocations{scheduler=list}"] == 2
        assert counters["allocator.invocations{allocator=left-edge}"] == 2
        hist = obs.metrics().histograms()[
            "scheduler.latency_ms{scheduler=list}"
        ]
        assert hist.count == 2 and hist.total > 0.0


class TestCacheMetrics:
    def test_stats_exposes_evictions_and_sizes(self):
        cache = SynthesisCache(max_entries=2)
        design = object.__new__(SynthesizedDesign)
        cache.put(("a",), design)
        cache.put(("b",), design)
        assert cache.get(("a",)) is design
        assert cache.get(("nope",)) is None
        cache.put(("c",), design)  # evicts ("b",), the LRU entry
        stats = cache.stats()
        assert stats == {
            "entries": 2, "max_entries": 2,
            "hits": 1, "misses": 1, "evictions": 1,
        }
        assert cache.get(("b",)) is None

    def test_stats_backed_by_global_registry(self):
        cache = synthesis_cache()
        synthesize(SQRT_SOURCE, options=TWO_FU, use_cache=True)
        synthesize(SQRT_SOURCE, options=TWO_FU, use_cache=True)
        counters = obs.metrics().counters()
        assert counters["cache.misses"] == cache.stats()["misses"] == 1
        assert counters["cache.hits"] == cache.stats()["hits"] == 1
        assert obs.metrics().gauges()["cache.entries"] == 1.0

    def test_clear_resets_counters(self):
        cache = synthesis_cache()
        synthesize(SQRT_SOURCE, options=TWO_FU, use_cache=True)
        cache.clear()
        assert cache.stats()["misses"] == 0
        assert obs.metrics().counters()["cache.misses"] == 0


class TestChromeExport:
    def _traced_records(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        return obs.tracer().records()

    def test_export_is_valid_chrome_trace_json(self, tmp_path):
        records = self._traced_records()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), records)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(records)
        for event in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)

    def test_export_preserves_stage_names_and_nesting_times(self):
        records = self._traced_records()
        doc = obs.chrome_trace(records)
        events = {(e["name"], e["ts"]): e
                  for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"compile", "transforms", "schedule", "allocate",
                "bind", "controller"} <= {n for n, _ in events}
        by_index = {r.index: r for r in records}
        for record in records:
            if record.parent is None:
                continue
            parent = by_index[record.parent]
            # child lies within its parent's [ts, ts+dur] window
            assert parent.start_us <= record.start_us
            assert (record.start_us + record.duration_us
                    <= parent.start_us + parent.duration_us + 0.001)

    def test_non_json_attrs_are_stringified(self):
        with obs.tracing():
            with obs.trace_span("s", obj=ResourceConstraints({"fu": 1})):
                pass
        doc = obs.chrome_trace(obs.tracer().records())
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert isinstance(event["args"]["obj"], str)
        json.dumps(doc)  # whole document stays serializable


class TestProfileReport:
    def test_profile_table_structure(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        table = obs.profile_table(obs.tracer().records(),
                                  title="pipeline profile of 'sqrt':")
        lines = table.splitlines()
        assert lines[0] == "pipeline profile of 'sqrt':"
        assert lines[1].split() == ["stage", "calls", "time(ms)",
                                    "share"]
        stages = [line.split()[0] for line in lines[2:]]
        assert stages[:3] == ["compile", "transforms", "schedule"]
        assert stages[-2:] == ["other", "total"]
        assert lines[-1].rstrip().endswith("100.0%")

    def test_stage_totals_sums_calls(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), trace=True,
        ))
        totals = obs.stage_totals(obs.tracer().records())
        assert totals["schedule"]["calls"] == 2
        assert totals["compile"]["calls"] == 1
        assert totals["schedule"]["total_us"] > 0.0


class TestSweepTelemetry:
    def test_report_flag_collects_counter_deltas(self):
        result = explore_fu_range(SQRT_SOURCE, [1, 2], report=True)
        assert result.telemetry is not None
        counters = result.telemetry["counters"]
        assert counters["dse.points.evaluated"] == 2
        assert result.telemetry["wall_s"] > 0.0
        assert "sweep telemetry:" in result.table()

    def test_no_report_no_telemetry(self):
        result = explore_fu_range(SQRT_SOURCE, [1, 2])
        assert result.telemetry is None
        assert "sweep telemetry:" not in result.table()

    def test_fuzz_counters(self, tmp_path):
        from repro.verify import fuzz_seeds

        fuzz_seeds(2, ops=6, artifacts_dir=str(tmp_path / "artifacts"))
        counters = obs.metrics().counters()
        assert counters["fuzz.seeds.checked"] == 2
        # reset() keeps registered keys alive at zero, so check the
        # value rather than key absence
        assert counters.get("fuzz.seeds.failing", 0) == 0


class TestHistogramPercentiles:
    def _hist(self, boundaries=(10.0,)):
        from repro.obs.metrics import Histogram

        return Histogram(boundaries=boundaries)

    def test_empty_histogram_percentiles_are_zero(self):
        hist = self._hist()
        assert hist.p50 == 0.0
        assert hist.p95 == 0.0
        assert hist.p99 == 0.0

    def test_linear_interpolation_within_a_bucket(self):
        hist = self._hist(boundaries=(10.0,))
        for _ in range(10):
            hist.observe(1.0)  # all land in [0, 10]
        assert hist.p50 == pytest.approx(5.0)
        assert hist.p95 == pytest.approx(9.5)
        assert hist.p99 == pytest.approx(9.9)

    def test_interpolation_uses_previous_boundary_as_lower_edge(self):
        hist = self._hist(boundaries=(1.0, 2.0, 4.0))
        hist.observe(0.5)   # bucket [0, 1]
        hist.observe(1.5)   # bucket (1, 2]
        hist.observe(3.0)   # bucket (2, 4]
        hist.observe(3.5)   # bucket (2, 4]
        # rank 2 falls exactly at the end of the (1, 2] bucket
        assert hist.p50 == pytest.approx(2.0)

    def test_overflow_bucket_returns_last_boundary(self):
        hist = self._hist(boundaries=(10.0,))
        hist.observe(1000.0)
        assert hist.p99 == 10.0

    def test_summary_is_plain_data(self):
        hist = self._hist()
        hist.observe(2.0)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["mean"] == 2.0
        assert set(summary) == {"count", "mean", "p50", "p95", "p99"}

    def test_sweep_telemetry_includes_histograms(self):
        result = explore_fu_range(SQRT_SOURCE, [1, 2], report=True)
        histograms = result.telemetry["histograms"]
        assert any("scheduler.latency_ms" in key for key in histograms)
        for summary in histograms.values():
            assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert "p50=" in result.table()


class TestChromeTraceEdgeCases:
    def test_empty_records_yield_valid_empty_document(self):
        doc = obs.chrome_trace([])
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}
        json.dumps(doc)

    def test_zero_duration_spans_are_clamped_to_one_us(self):
        from repro.obs.export import MIN_EVENT_DURATION_US
        from repro.obs.tracer import SpanRecord

        record = SpanRecord(name="instant", index=0, parent=None,
                            depth=0, start_us=5.0, duration_us=0.0)
        doc = obs.chrome_trace([record])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == MIN_EVENT_DURATION_US

    def test_real_durations_are_not_clamped(self):
        from repro.obs.tracer import SpanRecord

        record = SpanRecord(name="long", index=0, parent=None,
                            depth=0, start_us=0.0, duration_us=42.5)
        doc = obs.chrome_trace([record])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == 42.5

    def test_metadata_rows_only_for_present_pids(self):
        from repro.obs.tracer import SpanRecord

        records = [
            SpanRecord(name="a", index=0, parent=None, depth=0,
                       start_us=0.0, duration_us=1.0, pid=11),
            SpanRecord(name="b", index=1, parent=None, depth=0,
                       start_us=0.0, duration_us=1.0, pid=22),
        ]
        doc = obs.chrome_trace(records)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert sorted(e["pid"] for e in meta) == [11, 22]


class TestMemoryProfiling:
    def test_off_by_default_and_no_gauges(self):
        assert not obs.memory_enabled()
        with obs.memory_span("schedule"):
            pass
        assert "engine.mem.peak_kb{stage=schedule}" not in (
            obs.metrics().gauges()
        )

    def test_memory_span_records_peak_gauge(self):
        with obs.memory_profiling(True):
            with obs.memory_span("schedule"):
                blob = [list(range(1000)) for _ in range(100)]
            del blob
        gauges = obs.metrics().gauges()
        assert gauges["engine.mem.peak_kb{stage=schedule}"] > 0.0

    def test_engine_memory_option_populates_stage_gauges(self):
        synthesize(SQRT_SOURCE, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), memory=True,
        ))
        gauges = obs.metrics().gauges()
        stages = {key for key in gauges
                  if key.startswith("engine.mem.peak_kb")}
        assert "engine.mem.peak_kb{stage=compile}" in stages
        assert "engine.mem.peak_kb{stage=schedule}" in stages

    def test_memory_option_does_not_change_cache_key(self):
        plain = SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}))
        with_memory = SynthesisOptions(
            constraints=ResourceConstraints({"fu": 2}), memory=True)
        assert plain.cache_key() == with_memory.cache_key()

    def test_nested_memory_profiling_is_reentrant(self):
        with obs.memory_profiling(True):
            with obs.maybe_memory(True):
                assert obs.memory_enabled()
            assert obs.memory_enabled()
        assert not obs.memory_enabled()


class TestExecPoolGauges:
    def test_pool_gauges_recorded_for_a_batch(self):
        from repro.exec import run_tasks
        from tests.test_exec_runtime import double

        run_tasks(double, [1, 2, 3, 4], max_workers=2)
        gauges = obs.metrics().gauges()
        assert gauges["exec.pool.workers"] == 2
        assert 0.0 < gauges["exec.pool.utilization"] <= 1.0
        assert gauges["exec.queue.wait_s"] >= 0.0
