"""Tests for the whole-pipeline linter (repro.analysis.lint)."""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import Diagnostic, DiagnosticSink
from repro.analysis.lint import (
    LintOptions,
    lint_cdfg,
    lint_design,
    lint_fsm,
    lint_netlist,
    lint_source,
)
from repro.__main__ import main
from repro.controller.fsm import FSM, ControlState, Transition
from repro.core import SynthesisOptions, synthesize_cdfg
from repro.datapath.netlist import (
    DatapathNetlist,
    Net,
    NetComponent,
    Pin,
    build_netlist,
)
from repro.lang import compile_source
from repro.workloads import SQRT_SOURCE

GOLDEN = Path(__file__).resolve().parent / "golden"
REPO = Path(__file__).resolve().parent.parent
DEMO = REPO / "examples" / "lint_demo.hls"
RANGE_DEMO = REPO / "examples" / "range_demo.hls"


def rules_of(sink):
    return {diag.rule for diag in sink}


def lint_source_rules(source):
    sink = DiagnosticSink()
    cdfg = compile_source(source, sink=sink)
    lint_cdfg(cdfg, sink)
    return sink


def normalize(text: str) -> str:
    """Mask process-global op ids in chained-logic component names."""
    return re.sub(r"logic\d+", "logicN", text)


class TestSourceRules:
    def test_read_before_write_certain(self):
        sink = lint_source_rules("""
procedure p(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  b := t + a;
end
""")
        (diag,) = [d for d in sink if d.rule == "src.read-before-write"]
        assert diag.severity == "error"
        assert diag.subject == "t"

    def test_read_before_write_maybe_is_warning(self):
        sink = lint_source_rules("""
procedure p(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  if a > 0 then t := 1;
  b := t + a;
end
""")
        (diag,) = [d for d in sink if d.rule == "src.read-before-write"]
        assert diag.severity == "warning"
        assert "may be read" in diag.message

    def test_dead_store(self):
        sink = lint_source_rules("""
procedure p(input a: int<8>; output b: int<8>);
var w: int<8>;
begin
  w := a * a;
  b := a;
end
""")
        (diag,) = [d for d in sink if d.rule == "src.dead-store"]
        assert diag.subject == "w"

    def test_unused_variable(self):
        sink = lint_source_rules("""
procedure p(input a: int<8>; output b: int<8>);
var u: int<8>;
begin
  b := a;
end
""")
        (diag,) = [d for d in sink if d.rule == "src.unused-var"]
        assert diag.subject == "u"

    def test_constant_condition_and_unreachable_block(self):
        sink = lint_source_rules("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a;
  if 0 > 1 then b := a + 1;
end
""")
        rules = rules_of(sink)
        assert "src.const-condition" in rules
        assert "src.unreachable-block" in rules
        (cond,) = [d for d in sink if d.rule == "src.const-condition"]
        assert "always False" in cond.message

    def test_clean_source_stays_clean(self):
        sink = lint_source_rules(SQRT_SOURCE)
        assert not sink


class TestDesignRules:
    @pytest.fixture
    def sqrt_design(self):
        cdfg = compile_source(SQRT_SOURCE)
        return synthesize_cdfg(cdfg, SynthesisOptions())

    def test_honest_design_is_clean(self, sqrt_design):
        sink = DiagnosticSink()
        lint_design(sqrt_design, sink)
        assert not sink

    def test_corrupted_schedule_use_before_def(self, sqrt_design):
        schedule = max(
            sqrt_design.schedules.values(),
            key=lambda s: len(s.start),
        )
        problem = schedule.problem
        u, v = next(iter(problem.graph.edges))
        original = schedule.start[v]
        schedule.start[v] = schedule.start[u] - 1
        try:
            sink = DiagnosticSink()
            lint_design(sqrt_design, sink)
            assert any(
                d.rule == "sched.use-before-def" and d.severity == "error"
                for d in sink
            )
        finally:
            schedule.start[v] = original

    def test_corrupted_allocation_register_overlap(self, sqrt_design):
        from repro.allocation.lifetimes import compute_lifetimes
        from repro.analysis import live_out_variables

        allocation = max(
            sqrt_design.allocations.values(),
            key=lambda a: len(a.register_map),
        )
        schedule = allocation.schedule
        lifetimes = compute_lifetimes(
            schedule, live_out_variables(schedule)
        )
        allocated = [
            lt for lt in lifetimes
            if lt.value.id in allocation.register_map
        ]
        pair = next(
            (x, y)
            for x in allocated
            for y in allocated
            if x.conflicts_with(y)
            and allocation.register_map[x.value.id]
            != allocation.register_map[y.value.id]
        )
        victim = pair[1].value.id
        original = allocation.register_map[victim]
        allocation.register_map[victim] = allocation.register_map[
            pair[0].value.id
        ]
        try:
            sink = DiagnosticSink()
            lint_design(sqrt_design, sink)
            assert any(
                d.rule == "alloc.register-overlap" for d in sink
            )
        finally:
            allocation.register_map[victim] = original

    def test_suite_netlists_pass_structural_rules(self, sqrt_design):
        sink = DiagnosticSink()
        lint_netlist(build_netlist(sqrt_design), sink)
        assert not sink


class TestNetlistRules:
    def test_multi_driver(self):
        netlist = DatapathNetlist()
        r0 = netlist.add_component(NetComponent("register", "r0", 8))
        r1 = netlist.add_component(NetComponent("register", "r1", 8))
        fu = netlist.add_component(NetComponent("fu", "add0", 8))
        netlist.nets.append(Net(Pin(r0, "q"), [Pin(fu, "in0")], 8))
        netlist.nets.append(Net(Pin(r1, "q"), [Pin(fu, "in0")], 8))
        sink = DiagnosticSink()
        lint_netlist(netlist, sink)
        assert any(
            d.rule == "net.multi-driver" and d.severity == "error"
            for d in sink
        )

    def test_structural_width_mismatch(self):
        netlist = DatapathNetlist()
        r0 = netlist.add_component(NetComponent("register", "r0", 16))
        fu = netlist.add_component(NetComponent("fu", "add0", 8))
        netlist.nets.append(Net(Pin(r0, "q"), [Pin(fu, "in0")], 16))
        sink = DiagnosticSink()
        lint_netlist(netlist, sink)
        assert any(d.rule == "net.width-mismatch" for d in sink)

    def test_floating_port(self):
        netlist = DatapathNetlist()
        fu = netlist.add_component(NetComponent("fu", "add0", 8))
        r0 = netlist.add_component(NetComponent("register", "r0", 8))
        netlist.nets.append(Net(Pin(fu, "q"), [Pin(r0, "d")], 8))
        sink = DiagnosticSink()
        lint_netlist(netlist, sink)
        assert any(d.rule == "net.floating-port" for d in sink)

    def test_comb_loop_through_fus(self):
        netlist = DatapathNetlist()
        add = netlist.add_component(NetComponent("fu", "add0", 8))
        mul = netlist.add_component(NetComponent("fu", "mul0", 8))
        netlist.nets.append(Net(Pin(add, "q"), [Pin(mul, "in0")], 8))
        netlist.nets.append(Net(Pin(mul, "q"), [Pin(add, "in0")], 8))
        sink = DiagnosticSink()
        lint_netlist(netlist, sink)
        (diag,) = [d for d in sink if d.rule == "net.comb-loop"]
        assert diag.severity == "error"
        assert "add0" in diag.message and "mul0" in diag.message

    def test_register_breaks_the_loop(self):
        netlist = DatapathNetlist()
        add = netlist.add_component(NetComponent("fu", "add0", 8))
        mul = netlist.add_component(NetComponent("fu", "mul0", 8))
        r0 = netlist.add_component(NetComponent("register", "r0", 8))
        netlist.nets.append(Net(Pin(add, "q"), [Pin(mul, "in0")], 8))
        netlist.nets.append(Net(Pin(mul, "q"), [Pin(r0, "d")], 8))
        netlist.nets.append(Net(Pin(r0, "q"), [Pin(add, "in0")], 8))
        sink = DiagnosticSink()
        lint_netlist(netlist, sink)
        assert not any(d.rule == "net.comb-loop" for d in sink)


class TestRangeRules:
    def test_demo_reports_every_range_defect(self):
        report = lint_source(RANGE_DEMO.read_text())
        rules = {diag.rule for diag in report.diagnostics}
        assert rules == {
            "range.div-zero",
            "range.const-compare",
            "range.overflow",
            "range.shift-range",
        }
        assert report.exit_code == 2

    def test_provable_truncation_is_suppressed(self):
        # The frontend flags `small := a >> 4` (uint<8> value into
        # uint<4>), but the interval analysis proves the shifted value
        # fits, so the final report must not carry the warning.
        source = RANGE_DEMO.read_text()
        sink = DiagnosticSink()
        compile_source(source, sink=sink)
        emitted = [
            d for d in sink
            if d.rule == "lang.implicit-trunc" and d.subject == "small"
        ]
        assert emitted, "demo no longer triggers the frontend warning"
        report = lint_source(source)
        assert not any(
            diag.rule == "lang.implicit-trunc"
            for diag in report.diagnostics
        )

    def test_unprovable_truncation_still_reported(self):
        report = lint_source("""
procedure p(input a: int<16>; output b: int<8>);
var t: int<8>;
begin
  t := a;
  if a > 0 then
    b := t;
  else
    b := 0 - t;
end
""")
        assert any(
            diag.rule == "lang.implicit-trunc"
            for diag in report.diagnostics
        )

    def test_div_by_unsigned_warns_boundary_zero(self):
        # An unsigned divisor: zero is a reachable interval endpoint,
        # so the divide deserves a warning (not an error).
        report = lint_source("""
procedure p(input a: int<8>; input d: uint<8>; output b: int<8>);
begin
  b := a / d;
end
""")
        (diag,) = [
            d for d in report.diagnostics if d.rule == "range.div-zero"
        ]
        assert diag.severity == "warning"
        assert "may be zero" in diag.message

    def test_div_by_interior_zero_is_silent(self):
        # A full-range signed divisor contains zero, but zero is not a
        # proven endpoint — warning on every signed divide would drown
        # the rule in noise.
        report = lint_source("""
procedure p(input a: int<8>; input d: int<8>; output b: int<8>);
begin
  b := a / d;
end
""")
        assert not any(
            d.rule == "range.div-zero" for d in report.diagnostics
        )

    def test_sqrt_stays_clean_under_range_rules(self):
        report = lint_source(SQRT_SOURCE)
        assert not report.diagnostics

    def test_rule_counts(self):
        report = lint_source(RANGE_DEMO.read_text())
        counts = report.rule_counts()
        assert counts["range.div-zero"] == 1
        assert sum(counts.values()) == len(report.diagnostics)
        assert list(counts) == sorted(counts)


class TestLiteralTruncation:
    def test_representable_literal_is_quiet(self):
        # `n := 3.0` evaluates at the default fixed<32,16> only for
        # lack of context; the value fits int<8> exactly, so warning
        # about the "truncation" would be noise.
        sink = DiagnosticSink()
        compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var n: int<8>;
begin
  n := 3.0;
  b := a + n;
end
""", sink=sink)
        assert not any(
            d.rule == "lang.implicit-trunc" and d.subject == "n"
            for d in sink
        )

    def test_unrepresentable_literal_still_warns(self):
        sink = DiagnosticSink()
        compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var n: int<8>;
begin
  n := 3.7;
  b := a + n;
end
""", sink=sink)
        assert any(
            d.rule == "lang.implicit-trunc" and d.subject == "n"
            for d in sink
        )


class TestDiagnosticSink:
    def make(self, **kwargs):
        defaults = dict(
            rule="src.dead-store",
            severity="warning",
            message="stored value is never read",
            subject="w",
        )
        defaults.update(kwargs)
        return Diagnostic(**defaults)

    def test_exact_duplicates_collapse(self):
        sink = DiagnosticSink()
        sink.emit(self.make())
        sink.emit(self.make())
        assert len(sink) == 1

    def test_duplicates_do_not_double_count_metric(self):
        from repro.obs import metrics

        def total():
            return sum(
                value
                for key, value in metrics().counters().items()
                if key.startswith("lint.diagnostics")
            )

        before = total()
        sink = DiagnosticSink()
        sink.emit(self.make())
        sink.emit(self.make())
        assert total() - before == 1

    def test_near_duplicates_survive(self):
        sink = DiagnosticSink()
        sink.emit(self.make())
        sink.emit(self.make(subject="v"))
        sink.emit(self.make(severity="error"))
        assert len(sink) == 3

    def test_sort_key_orders_by_position_then_severity(self):
        from repro.errors import SourceLocation

        late = self.make(location=SourceLocation(9, 1))
        early_warn = self.make(location=SourceLocation(2, 1))
        early_err = self.make(
            severity="error", location=SourceLocation(2, 1)
        )
        floating = self.make()
        ordered = sorted(
            [late, floating, early_warn, early_err],
            key=lambda d: d.sort_key,
        )
        assert ordered == [early_err, early_warn, late, floating]


class TestFSMRules:
    def test_unreachable_state(self):
        fsm = FSM()
        plan = type("PlanStub", (), {})()
        plan.block = type("BlockStub", (), {"name": "bb0"})()
        fsm.states = [
            ControlState(0, plan, 0, Transition(None)),
            ControlState(1, plan, 1, Transition(None)),
        ]
        fsm.entry = 0
        sink = DiagnosticSink()
        lint_fsm(fsm, sink)
        (diag,) = list(sink)
        assert diag.rule == "fsm.unreachable-state"
        assert diag.subject == "S1"


class TestLintDriver:
    def test_demo_reports_every_seeded_defect(self):
        report = lint_source(DEMO.read_text())
        rules = {diag.rule for diag in report.diagnostics}
        assert {
            "src.read-before-write",
            "src.dead-store",
            "src.unreachable-block",
            "src.const-condition",
            "src.unused-var",
            "lang.implicit-trunc",
            "net.width-mismatch",
            "net.comb-loop",
        } <= rules
        assert report.exit_code == 2

    def test_sqrt_is_clean(self):
        report = lint_source(SQRT_SOURCE)
        assert not report.diagnostics
        assert report.exit_code == 0
        assert "clean" in report.render()

    def test_universal_model_skips_false_loop(self):
        report = lint_source(
            DEMO.read_text(), LintOptions(model="universal")
        )
        rules = {diag.rule for diag in report.diagnostics}
        assert "net.comb-loop" not in rules
        assert "src.read-before-write" in rules


class TestCLIGolden:
    def test_text_output_matches_golden(self, capsys):
        assert main(["lint", str(DEMO)]) == 2
        out = capsys.readouterr().out
        golden = (GOLDEN / "lint_demo.txt").read_text()
        assert normalize(out) == normalize(golden)

    def test_json_output_matches_golden(self, capsys):
        assert main(["lint", str(DEMO), "--format", "json"]) == 2
        out = capsys.readouterr().out
        payload = json.loads(out)
        golden = json.loads((GOLDEN / "lint_demo.json").read_text())
        assert normalize(json.dumps(payload, indent=2)) == normalize(
            json.dumps(golden, indent=2)
        )

    def test_sqrt_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "sqrt.hls"
        path.write_text(SQRT_SOURCE)
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_exit_one(self, capsys, tmp_path):
        path = tmp_path / "warn.hls"
        path.write_text("""
procedure p(input a: int<8>; output b: int<8>);
var u: int<8>;
begin
  b := a;
end
""")
        assert main(["lint", str(path)]) == 1
        assert "src.unused-var" in capsys.readouterr().out

    def test_nothing_to_lint_errors(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_range_demo_text_matches_golden(self, capsys):
        assert main(["lint", str(RANGE_DEMO)]) == 2
        out = capsys.readouterr().out
        golden = (GOLDEN / "range_demo.txt").read_text()
        assert out == golden

    def test_range_demo_json_matches_golden(self, capsys):
        assert main(["lint", str(RANGE_DEMO), "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        golden = json.loads((GOLDEN / "range_demo.json").read_text())
        assert payload == golden

    def test_range_demo_sarif_matches_golden(self, capsys):
        assert main(["lint", str(RANGE_DEMO), "--format", "sarif"]) == 2
        out = capsys.readouterr().out.replace(
            str(RANGE_DEMO), "examples/range_demo.hls"
        )
        payload = json.loads(out)
        golden = json.loads((GOLDEN / "range_demo.sarif").read_text())
        assert payload == golden
        assert payload["version"] == "2.1.0"

    def test_lint_demo_sarif_matches_golden(self, capsys):
        assert main(["lint", str(DEMO), "--format", "sarif"]) == 2
        out = capsys.readouterr().out.replace(
            str(DEMO), "examples/lint_demo.hls"
        )
        payload = json.loads(normalize(out))
        golden = json.loads(
            normalize((GOLDEN / "lint_demo.sarif").read_text())
        )
        assert payload == golden

    def test_sarif_levels_and_rules_are_well_formed(self, capsys):
        assert main(["lint", str(RANGE_DEMO), "--format", "sarif"]) == 2
        payload = json.loads(capsys.readouterr().out)
        (run,) = payload["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        for result in run["results"]:
            assert result["level"] in ("note", "warning", "error")
            assert result["ruleId"] in rule_ids

    def test_metrics_counter_incremented(self, capsys):
        from repro.obs import metrics

        assert main(["lint", str(DEMO)]) == 2
        capsys.readouterr()
        counts = {
            key: value
            for key, value in metrics().counters().items()
            if key.startswith("lint.diagnostics")
        }
        assert counts
        assert sum(counts.values()) == 8
