"""Smoke-runs the perf harness so its code path stays healthy.

``benchmarks/perf/run_bench.py`` is a script, not a package module;
it is loaded here by file path.  The smoke budget uses one repeat and
trimmed workloads, so the assertions stick to structure and the
equivalence flags — never to timing thresholds, which would flake on
a loaded machine.
"""

import importlib.util
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core import SynthesisOptions, synthesize
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE

RUN_BENCH = (
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "perf" / "run_bench.py"
)


def _load_run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", RUN_BENCH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.perf_smoke
def test_smoke_budget_runs_and_results_match():
    run_bench = _load_run_bench()
    report = run_bench.run_benchmarks("smoke")

    assert report["budget"] == "smoke"
    assert set(report["dse"]) == {
        "diffeq_sweep", "sqrt_sweep", "sqrt_search"
    }
    for name, entry in report["dse"].items():
        assert entry["equivalent"], f"dse/{name} diverged from the seed path"
        assert entry["baseline_s"] > 0 and entry["new_s"] > 0
    for name, entry in report["schedulers"].items():
        assert entry["identical_schedules"], (
            f"schedulers/{name} changed its schedule"
        )
        assert entry["speedup"] > 0


@pytest.mark.perf_smoke
def test_smoke_report_embeds_store_and_ir_sections():
    run_bench = _load_run_bench()
    report = run_bench.run_benchmarks("smoke")

    assert set(report["store"]) == {
        "cross_process_sweep", "edit_resynthesis"
    }
    sweep = report["store"]["cross_process_sweep"]
    assert sweep["equivalent"], "warm sweep rows diverged from cold"
    assert sweep["cold_s"] > 0 and sweep["warm_s"] > 0
    assert sweep["cold_store_misses"] == sweep["points"]
    assert sweep["warm_store_hits"] == sweep["points"]
    assert sweep["warm_store_misses"] == 0

    edit = report["store"]["edit_resynthesis"]
    assert edit["equivalent"], "incremental resynthesis not verified"
    assert edit["full_s"] > 0 and edit["incremental_s"] > 0
    assert edit["dirty_blocks"] == 1
    assert edit["replayed_blocks"] >= 1

    interning = report["ir"]["interning"]
    assert interning["equivalent"], "interning changed the built IR"
    assert interning["bytes_saved"] > 0
    assert interning["interned_s"] > 0 and interning["uninterned_s"] > 0

    narrow = report["narrow"]["diffeq_contract"]
    assert narrow["equivalent"], "narrowed diffeq diverged"
    assert narrow["area_saved"] > 0
    assert narrow["narrow_summary"].startswith("narrow:")
    assert narrow["cycles"][0] == narrow["cycles"][1]


@pytest.mark.perf_smoke
def test_smoke_report_embeds_directive_funnel():
    """The directive-DSE section must pin both acceptance properties:
    front expansion over the FU-only sweep and a >=2x full-evaluation
    saving from the estimator funnel."""
    run_bench = _load_run_bench()
    report = run_bench.run_benchmarks("smoke")

    entry = report["directives"]["diffeq"]
    assert entry["equivalent"], (
        "plain directive cells diverged from the FU-only sweep"
    )
    assert entry["exhaustive"] == entry["configs"] * len(entry["limits"])
    assert entry["configs_pruned"] > 0
    assert entry["configs_evaluated"] * 2 <= entry["exhaustive"], (
        "funnel must prune at least half the exhaustive cross-product"
    )
    assert (entry["configs_evaluated"] + entry["configs_pruned"]
            == entry["exhaustive"])
    assert entry["new_nondominated"] >= 1, (
        "directive sweep found no new non-dominated point"
    )
    assert entry["front_directives"] >= entry["front_baseline"]
    assert entry["new_s"] > 0


@pytest.mark.perf_smoke
def test_smoke_report_embeds_stage_breakdown():
    run_bench = _load_run_bench()
    report = run_bench.run_benchmarks("smoke")

    breakdown = report["stage_breakdown"]
    assert set(breakdown) == {"sqrt", "diffeq"}
    for workload, entry in breakdown.items():
        assert entry["total_ms"] > 0
        stages = entry["stages"]
        assert set(obs.CORE_STAGES) <= set(stages), workload
        for stage, row in stages.items():
            assert row["calls"] >= 1
            assert row["ms"] >= 0
            assert 0 <= row["share"] <= 100


@pytest.mark.perf_smoke
def test_unknown_budget_rejected():
    run_bench = _load_run_bench()
    with pytest.raises(ValueError):
        run_bench.run_benchmarks("enormous")


@pytest.mark.perf_smoke
def test_disabled_tracing_overhead_budget():
    """Instrumentation left in the hot paths must be ~free when off.

    A direct traced-vs-untraced wall-clock comparison of a ~5 ms
    synthesis run cannot resolve a 2 % budget on a shared machine, so
    the assertion is constructed instead: (spans one traced run
    records) × (measured per-call cost of the *disabled*
    ``trace_span``) must stay under 2 % of an untraced run.  The
    disabled path is a module-global flag test plus returning a shared
    no-op object — nanoseconds — so the margin is orders of magnitude,
    and the test only fails if someone makes the disabled path do real
    work.
    """
    options = SynthesisOptions(
        constraints=ResourceConstraints({"fu": 2}), trace=True,
    )
    synthesize(SQRT_SOURCE, options=options)
    spans_per_run = len(obs.tracer().records())
    assert spans_per_run >= len(obs.CORE_STAGES)
    obs.reset_tracing()

    assert not obs.tracing_enabled()
    calls = 100_000
    started = time.perf_counter()
    for _ in range(calls):
        with obs.trace_span("noop", key="value"):
            pass
    per_call_s = (time.perf_counter() - started) / calls
    assert obs.tracer().records() == []

    untraced = SynthesisOptions(
        constraints=ResourceConstraints({"fu": 2})
    )
    started = time.perf_counter()
    synthesize(SQRT_SOURCE, options=untraced)
    run_s = time.perf_counter() - started

    overhead_s = spans_per_run * per_call_s
    assert overhead_s < 0.02 * run_s, (
        f"{spans_per_run} spans x {per_call_s * 1e9:.0f} ns "
        f"= {overhead_s * 1e6:.1f} us, over 2% of "
        f"{run_s * 1e3:.2f} ms"
    )
