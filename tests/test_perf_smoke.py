"""Smoke-runs the perf harness so its code path stays healthy.

``benchmarks/perf/run_bench.py`` is a script, not a package module;
it is loaded here by file path.  The smoke budget uses one repeat and
trimmed workloads, so the assertions stick to structure and the
equivalence flags — never to timing thresholds, which would flake on
a loaded machine.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

RUN_BENCH = (
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "perf" / "run_bench.py"
)


def _load_run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", RUN_BENCH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.perf_smoke
def test_smoke_budget_runs_and_results_match():
    run_bench = _load_run_bench()
    report = run_bench.run_benchmarks("smoke")

    assert report["budget"] == "smoke"
    assert set(report["dse"]) == {
        "diffeq_sweep", "sqrt_sweep", "sqrt_search"
    }
    for name, entry in report["dse"].items():
        assert entry["equivalent"], f"dse/{name} diverged from the seed path"
        assert entry["baseline_s"] > 0 and entry["new_s"] > 0
    for name, entry in report["schedulers"].items():
        assert entry["identical_schedules"], (
            f"schedulers/{name} changed its schedule"
        )
        assert entry["speedup"] > 0


@pytest.mark.perf_smoke
def test_unknown_budget_rejected():
    run_bench = _load_run_bench()
    with pytest.raises(ValueError):
        run_bench.run_benchmarks("enormous")
