"""Parity and property tests for the analysis-backed transform refactor.

The DCE/CSE refactor onto ``repro.analysis`` primitives must be
behaviour-preserving down to the exact IR produced: the pre-refactor
implementations are embedded here as references, and both pipelines run
on independently compiled copies of the same program — the resulting
IR must be identical op for op.
"""

import pytest

from repro.allocation.lifetimes import compute_lifetimes
from repro.analysis import (
    DiagnosticSink,
    constant_of,
    live_out_variables,
    transitively_dead_ops,
)
from repro.analysis.constants import EVALUATABLE_KINDS
from repro.analysis.expressions import EXPRESSION_KINDS
from repro.analysis.lint import lint_cdfg, lint_design, lint_netlist
from repro.core import SynthesisOptions, synthesize_cdfg
from repro.datapath.netlist import build_netlist
from repro.ir.opcodes import COMMUTATIVE, OpKind
from repro.lang import compile_source
from repro.transforms import (
    CommonSubexpressionElimination,
    ConstantFolding,
    DeadCodeElimination,
    PassManager,
    standard_pipeline,
)
from repro.transforms.base import Pass
from repro.transforms.constprop import _PURE_FOLDABLE, _const_of
from repro.workloads import (
    DIFFEQ_SOURCE,
    SQRT_SOURCE,
    RandomDFGSpec,
    build_dfg,
    dfg_recipe,
    fir_source,
)

SOURCES = {
    "sqrt": SQRT_SOURCE,
    "diffeq": DIFFEQ_SOURCE,
    "fir4": fir_source(4),
}

RECIPES = [
    dfg_recipe(RandomDFGSpec(ops=14, inputs=4, seed=seed))
    for seed in (1, 7, 23, 91)
]


def ir_dump(cdfg) -> str:
    """Canonical IR rendering: value ids renumbered in first-use order
    so two independently compiled copies compare equal."""
    ordinal: dict[int, int] = {}

    def vid(value) -> int:
        return ordinal.setdefault(value.id, len(ordinal))

    lines = []
    for block in cdfg.blocks():
        lines.append(f"block {block.name}")
        for op in block.ops:
            operands = ",".join(f"v{vid(v)}" for v in op.operands)
            attrs = ",".join(
                f"{k}={v!r}" for k, v in sorted(op.attrs.items())
            )
            result = (
                ""
                if op.result is None
                else f" -> v{vid(op.result)}:{op.result.type}"
            )
            lines.append(
                f"  {op.kind.name}({operands}) [{attrs}]{result}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Pre-refactor reference implementations (verbatim logic)
# ----------------------------------------------------------------------


class ReferenceDCE(Pass):
    """DCE exactly as shipped before the analysis refactor."""

    name = "dce"

    _SIDE_EFFECT_KINDS = frozenset(
        {OpKind.VAR_WRITE, OpKind.STORE, OpKind.NOP}
    )

    def run(self, cdfg) -> bool:
        changed = False
        changed |= self._remove_dead_writes(cdfg)
        changed |= self._remove_dead_ops(cdfg)
        return changed

    def _remove_dead_ops(self, cdfg) -> bool:
        live_conds = self._region_condition_values(cdfg)
        changed = False
        while True:
            removed = False
            for block in cdfg.blocks():
                for op in list(block.ops):
                    if op.kind in self._SIDE_EFFECT_KINDS:
                        continue
                    if op.result is None:
                        continue
                    if op.result.uses or op.result.id in live_conds:
                        continue
                    block.remove_op(op)
                    removed = True
                    changed = True
            if not removed:
                return changed

    def _remove_dead_writes(self, cdfg) -> bool:
        output_names = {port.name for port in cdfg.outputs}
        read_names = {
            op.attrs["var"]
            for op in cdfg.operations()
            if op.kind is OpKind.VAR_READ
        }
        live = output_names | read_names
        changed = False
        for block in cdfg.blocks():
            for op in list(block.ops):
                if (
                    op.kind is OpKind.VAR_WRITE
                    and op.attrs["var"] not in live
                ):
                    block.remove_op(op)
                    changed = True
        return changed

    @staticmethod
    def _region_condition_values(cdfg) -> set:
        from repro.ir.cdfg import IfRegion, LoopRegion

        conds = set()
        for region in cdfg.body.walk():
            if isinstance(region, (IfRegion, LoopRegion)):
                conds.add(region.cond.id)
        return conds


class ReferenceCSE(Pass):
    """CSE exactly as shipped before the analysis refactor."""

    name = "cse"

    _CSE_KINDS = frozenset(
        {
            OpKind.CONST,
            OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
            OpKind.INC, OpKind.DEC, OpKind.NEG, OpKind.SHL, OpKind.SHR,
            OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
            OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE,
            OpKind.GT, OpKind.GE,
            OpKind.MUX,
        }
    )

    def run(self, cdfg) -> bool:
        changed = False
        for block in cdfg.blocks():
            if self._run_block(block):
                changed = True
        return changed

    def _run_block(self, block) -> bool:
        changed = False
        seen: dict[tuple, object] = {}
        for op in list(block.ops):
            if op.kind not in self._CSE_KINDS or op.result is None:
                continue
            operand_ids = [v.id for v in op.operands]
            if op.kind in COMMUTATIVE:
                operand_ids.sort()
            attr_key = tuple(sorted(op.attrs.items()))
            key = (op.kind, tuple(operand_ids), attr_key, op.result.type)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op.result
                continue
            block.replace_all_uses(op.result, existing)
            self._replace_region_conds(block, op.result, existing)
            if not op.result.uses:
                block.remove_op(op)
                changed = True
        return changed

    @staticmethod
    def _replace_region_conds(block, old, new) -> None:
        from repro.ir.cdfg import IfRegion, LoopRegion

        for region in block.cdfg.body.walk():
            if isinstance(region, (IfRegion, LoopRegion)):
                if region.cond is old:
                    region.cond = new


def reference_pipeline() -> PassManager:
    """The standard pipeline with the pre-refactor DCE/CSE swapped in."""
    manager = standard_pipeline()
    passes = []
    for p in manager._passes:
        if isinstance(p, DeadCodeElimination):
            passes.append(ReferenceDCE())
        elif isinstance(p, CommonSubexpressionElimination):
            passes.append(ReferenceCSE())
        else:
            passes.append(p)
    return PassManager(passes)


# ----------------------------------------------------------------------
# Parity tests
# ----------------------------------------------------------------------


class TestTransformParity:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_full_pipeline_ir_identical_on_sources(self, name):
        reference = compile_source(SOURCES[name])
        refactored = compile_source(SOURCES[name])
        reference_pipeline().run(reference)
        standard_pipeline().run(refactored)
        assert ir_dump(reference) == ir_dump(refactored)

    @pytest.mark.parametrize(
        "recipe", RECIPES, ids=lambda r: r.name
    )
    def test_full_pipeline_ir_identical_on_random_dfgs(self, recipe):
        reference = build_dfg(recipe)
        refactored = build_dfg(recipe)
        reference_pipeline().run(reference)
        standard_pipeline().run(refactored)
        assert ir_dump(reference) == ir_dump(refactored)

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_dce_alone_identical(self, name):
        reference = compile_source(SOURCES[name])
        refactored = compile_source(SOURCES[name])
        while ReferenceDCE().run(reference):
            pass
        while DeadCodeElimination().run(refactored):
            pass
        assert ir_dump(reference) == ir_dump(refactored)

    def test_dce_removes_exactly_the_predicted_ops(self):
        for recipe in RECIPES:
            cdfg = build_dfg(recipe)
            DeadCodeElimination()._remove_dead_writes(cdfg)
            predicted = transitively_dead_ops(cdfg)
            before = {op.id for op in cdfg.operations()}
            DeadCodeElimination()._remove_dead_ops(cdfg)
            after = {op.id for op in cdfg.operations()}
            assert before - after == predicted

    def test_constprop_shares_the_analysis_primitives(self):
        # The constant-folding refactor is alias-level: the pass folds
        # on the exact objects the analysis package exports.
        assert _PURE_FOLDABLE is EVALUATABLE_KINDS
        assert _const_of is constant_of
        assert (
            CommonSubexpressionElimination  # noqa: B018 - import proof
            and ConstantFolding
        )
        assert OpKind.CONST in EXPRESSION_KINDS


class TestLifetimeParity:
    """Liveness-tightened lifetimes must be a no-op on the built-in
    workloads: after DCE every surviving write is live out of its
    block, so intervals are pinned identical to the conservative
    computation."""

    @pytest.mark.parametrize("name", ["sqrt", "diffeq"])
    def test_intervals_pinned_identical(self, name):
        cdfg = compile_source(SOURCES[name])
        design = synthesize_cdfg(cdfg, SynthesisOptions())
        compared = 0
        for schedule in design.schedules.values():
            conservative = compute_lifetimes(schedule)
            live_out = live_out_variables(schedule)
            assert live_out is not None
            tightened = compute_lifetimes(schedule, live_out)
            assert [
                (lt.value.id, lt.def_step, lt.last_use, lt.carrier)
                for lt in conservative
            ] == [
                (lt.value.id, lt.def_step, lt.last_use, lt.carrier)
                for lt in tightened
            ]
            compared += len(conservative)
        assert compared > 0

    def test_dead_write_does_tighten_when_present(self):
        # The mechanism itself must still fire: a write that nothing
        # reads must not pin its value to the end of the block.
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var w: int<8>;
begin
  w := a * a;
  b := a + 1;
end
""")
        design = synthesize_cdfg(
            cdfg, SynthesisOptions(optimize_ir=False)
        )
        for schedule in design.schedules.values():
            live_out = live_out_variables(schedule)
            if live_out is None or "w" in live_out:
                continue
            conservative = compute_lifetimes(schedule)
            tightened = compute_lifetimes(schedule, live_out)
            assert len(tightened) <= len(conservative)
            spans = lambda lts: sum(
                lt.last_use - lt.def_step for lt in lts
            )
            assert spans(tightened) < spans(conservative)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------


class TestLintStability:
    @pytest.mark.parametrize(
        "recipe", RECIPES, ids=lambda r: r.name
    )
    def test_clean_designs_stay_clean_after_each_transform(self, recipe):
        baseline = DiagnosticSink()
        lint_cdfg(build_dfg(recipe), baseline)
        assert not baseline, "generated DFGs must start lint-clean"
        for transform in standard_pipeline()._passes:
            cdfg = build_dfg(recipe)
            while transform.run(cdfg):
                pass
            cdfg.validate()
            sink = DiagnosticSink()
            lint_cdfg(cdfg, sink)
            assert not sink, (
                f"{transform.name} introduced findings: "
                f"{[d.render() for d in sink]}"
            )

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_clean_sources_stay_clean_through_the_pipeline(self, name):
        if name == "diffeq":
            pytest.skip(
                "diffeq's temp copies are genuine dead stores"
            )
        cdfg = compile_source(SOURCES[name])
        sink = DiagnosticSink()
        lint_cdfg(cdfg, sink)
        assert not sink
        standard_pipeline().run(cdfg)
        after = DiagnosticSink()
        lint_cdfg(cdfg, after)
        assert not after


class TestNetlistSweep:
    """Every design the suite synthesizes must pass the structural
    netlist rules — they flag corruption, not sharing artifacts (the
    demo's false loop needs the typed model plus cross-block chains)."""

    @pytest.mark.parametrize("name", sorted(SOURCES))
    @pytest.mark.parametrize("allocator",
                             ["left-edge", "clique", "greedy"])
    def test_workload_netlists_are_structurally_clean(
        self, name, allocator
    ):
        cdfg = compile_source(SOURCES[name])
        design = synthesize_cdfg(
            cdfg, SynthesisOptions(allocator=allocator)
        )
        sink = DiagnosticSink()
        lint_netlist(build_netlist(design), sink)
        assert not list(sink), [d.render() for d in sink]

    def test_design_rules_clean_on_random_dfgs(self):
        for recipe in RECIPES[:2]:
            design = synthesize_cdfg(
                build_dfg(recipe), SynthesisOptions()
            )
            sink = DiagnosticSink()
            lint_design(design, sink)
            assert not list(sink), [d.render() for d in sink]
