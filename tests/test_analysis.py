"""Tests for the dataflow-analysis framework (repro.analysis)."""


from repro.analysis import (
    BOTTOM,
    ENTRY,
    EXIT,
    TOP,
    UNIVERSE,
    available_expressions,
    build_cfg,
    constant_lattice,
    constant_of,
    def_use_chains,
    evaluated_conditions,
    expression_key,
    live_out_variables,
    region_condition_values,
    transitively_dead_ops,
    variable_liveness,
    variable_usage,
)
from repro.analysis.reaching import (
    INPUT,
    UNINIT,
    definition_is_uninitialized,
    reaching_definitions,
)
from repro.ir import OpKind
from repro.lang import compile_source
from repro.workloads import diffeq_cdfg, sqrt_cdfg

STRAIGHT = """
procedure straight(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  t := a + 1;
  b := t * 2;
end
"""

BRANCHY = """
procedure branchy(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  if a > 0 then
    t := a + 1;
  else
    t := a - 1;
  b := t;
end
"""

LOOPY = """
procedure loopy(input a: int<8>; output b: int<8>);
var i, acc: int<8>;
begin
  acc := 0;
  i := 0;
  while i < a do
  begin
    acc := acc + i;
    i := i + 1;
  end;
  b := acc;
end
"""


def loop_body(cfg):
    """The LOOPY body block: the one with an upward-exposed read of
    acc."""
    for block in cfg.blocks.values():
        if any(
            op.kind is OpKind.VAR_READ and op.attrs["var"] == "acc"
            for op in block.ops
        ):
            return block
    raise AssertionError("no block reads acc")


class TestCFG:
    def test_straight_line_shape(self):
        cfg = build_cfg(compile_source(STRAIGHT))
        assert len(cfg.blocks) == 1
        (block_id,) = cfg.blocks
        assert cfg.successors(ENTRY) == [block_id]
        assert cfg.successors(block_id) == [EXIT]
        assert cfg.predecessors(block_id) == [ENTRY]

    def test_branch_edges_annotated(self):
        cdfg = compile_source(BRANCHY)
        cfg = build_cfg(cdfg)
        annotated = [
            (src, dst)
            for (src, dst), _ in cfg.edge_conds.items()
        ]
        assert len(annotated) == 2  # then-edge and else-edge
        polarities = sorted(
            polarity for _, polarity in cfg.edge_conds.values()
        )
        assert polarities == [False, True]

    def test_loop_has_back_edge(self):
        cfg = build_cfg(compile_source(LOOPY))
        has_back_edge = any(
            dst in cfg.blocks and src in cfg.blocks and
            list(cfg.blocks).index(dst) <= list(cfg.blocks).index(src)
            for src in cfg.blocks
            for dst in cfg.successors(src)
            if dst not in (ENTRY, EXIT)
        )
        assert has_back_edge

    def test_reachable_prunes_proven_false_edges(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
begin
  b := a;
  if 0 > 1 then b := a + 1;
end
""")
        cfg = build_cfg(cdfg)
        everything = cfg.reachable()
        assert set(cfg.blocks) <= everything
        constants = constant_lattice(cdfg, cfg)
        known = evaluated_conditions(cdfg, cfg, constants)
        assert list(known.values()) == [False]
        pruned = cfg.reachable(known)
        assert len(set(cfg.blocks) - pruned) == 1  # the then-block


class TestLiveness:
    def test_straight_line(self):
        cdfg = compile_source(STRAIGHT)
        cfg = build_cfg(cdfg)
        result = variable_liveness(cdfg, cfg)
        (block_id,) = cfg.blocks
        assert "a" in result.live_in[block_id]
        # b is the output port: live out of the last block.
        assert "b" in result.live_out[block_id]
        assert "t" not in result.live_out[block_id]

    def test_loop_carried_variable_is_live_around_back_edge(self):
        cdfg = compile_source(LOOPY)
        cfg = build_cfg(cdfg)
        result = variable_liveness(cdfg, cfg)
        body = loop_body(cfg)
        assert {"i", "acc"} <= result.live_out[body.id]

    def test_live_out_variables_none_for_detached_blocks(self):
        # Hand-built scheduling fixtures reuse blocks that are not part
        # of any CDFG region tree; liveness must decline, not guess.
        from repro.scheduling import (
            ListScheduler,
            SchedulingProblem,
            UniversalFUModel,
        )
        from repro.ir.cdfg import CDFG
        from repro.ir.types import IntType

        cdfg = CDFG("detached")
        block = cdfg.new_block("floating")
        a = block.const(1, IntType(8))
        b = block.const(2, IntType(8))
        total = block.emit(OpKind.ADD, [a, b], IntType(8))
        block.write("x", total.result)
        problem = SchedulingProblem.from_block(block, UniversalFUModel())
        schedule = ListScheduler(problem).schedule()
        assert live_out_variables(schedule) is None


class TestReaching:
    def test_uninitialized_read_flagged(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  b := t + a;
end
""")
        cfg = build_cfg(cdfg)
        chains = def_use_chains(cdfg, cfg)
        markers = sorted(chains.boundary_reads.values())
        assert markers == [INPUT, UNINIT]  # a arrives, t is garbage

    def test_write_then_read_links_def_to_use(self):
        cdfg = compile_source(BRANCHY)
        cfg = build_cfg(cdfg)
        chains = def_use_chains(cdfg, cfg)
        reads_of_t = [
            op.id
            for block in cfg.blocks.values()
            for op in block.ops
            if op.kind is OpKind.VAR_READ and op.attrs["var"] == "t"
        ]
        (read_id,) = reads_of_t
        assert len(chains.defs_of[read_id]) == 2  # both arms reach
        assert read_id not in chains.boundary_reads

    def test_pseudo_definition_classifier(self):
        assert definition_is_uninitialized((f"{UNINIT}x", ENTRY))
        assert not definition_is_uninitialized((f"{INPUT}x", ENTRY))
        assert not definition_is_uninitialized(("x", 3))

    def test_reaching_kills_previous_definition(self):
        cdfg = compile_source(LOOPY)
        cfg = build_cfg(cdfg)
        result = reaching_definitions(cdfg, cfg)
        body = loop_body(cfg)
        defs = result.reaching(body.id, "acc")
        # The uninitialized pseudo-def is killed by `acc := 0`.
        assert all(not definition_is_uninitialized(d) for d in defs)
        assert len(defs) == 2  # initial write and loop-body write


class TestAvailableExpressions:
    def test_must_intersection_over_branches(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; input c: int<8>; output b: int<8>);
var t: int<8>;
begin
  t := a * a;
  if c > 0 then
    t := t + 1;
  b := t + (a * a);
end
""")
        cfg = build_cfg(cdfg)
        result = available_expressions(cdfg, cfg)
        last = max(cfg.blocks)
        keys = result.available_in[last]
        assert keys is not UNIVERSE
        assert any(key[0] == str(OpKind.MUL) for key in keys)

    def test_expression_key_ignores_impure_ops(self):
        cdfg = compile_source(STRAIGHT)
        for op in cdfg.operations():
            if op.kind in (OpKind.VAR_READ, OpKind.VAR_WRITE):
                assert expression_key(op) is None


class TestConstants:
    def test_lattice_folds_straight_line(self):
        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var t: int<8>;
begin
  t := 2 + 3;
  b := a + t;
end
""")
        cfg = build_cfg(cdfg)
        constants = constant_lattice(cdfg, cfg)
        literals = [
            v for v in constants.values.values()
            if v is not TOP and v is not BOTTOM
        ]
        assert 5 in literals

    def test_loop_carried_counter_is_bottom(self):
        cdfg = compile_source(LOOPY)
        cfg = build_cfg(cdfg)
        constants = constant_lattice(cdfg, cfg)
        known = evaluated_conditions(cdfg, cfg, constants)
        assert known == {}  # i < a depends on an input

    def test_constant_of_reads_const_ops(self):
        cdfg = compile_source(STRAIGHT)
        consts = [
            op.result
            for op in cdfg.operations()
            if op.kind is OpKind.CONST
        ]
        assert consts
        assert all(constant_of(v) is not None for v in consts)


class TestUsage:
    def test_transitively_dead_ops_match_dce(self):
        from repro.transforms import DeadCodeElimination

        cdfg = compile_source("""
procedure p(input a: int<8>; output b: int<8>);
var dead: int<8>;
begin
  dead := (a * a) + 3;
  b := a + 1;
end
""")
        DeadCodeElimination()._remove_dead_writes(cdfg)
        predicted = transitively_dead_ops(cdfg)
        before = {op.id for op in cdfg.operations()}
        DeadCodeElimination()._remove_dead_ops(cdfg)
        after = {op.id for op in cdfg.operations()}
        assert before - after == predicted

    def test_region_condition_values_kept_live(self):
        cdfg = compile_source(BRANCHY)
        conds = region_condition_values(cdfg)
        assert len(conds) == 1
        assert not transitively_dead_ops(cdfg) & conds

    def test_variable_usage_on_workloads(self):
        for cdfg in (sqrt_cdfg(), diffeq_cdfg()):
            usage = variable_usage(cdfg)
            assert usage.outputs <= usage.live
            assert usage.read <= usage.live
