"""Verification scenario: the paper's §4 "design verification" story.

Shows the library's three verification instruments on one design:

1. *transformation verification* — the optimized CDFG is co-simulated
   against the original specification (McFarland & Parker's "each step
   … preserves the behavior", as a checkable instrument);
2. *implementation verification* — the synthesized RTL is co-simulated
   cycle-accurately against the behavioral model on corner and
   pseudorandom vectors;
3. *downstream artifacts* — the structural netlist (DOT), the Verilog
   module and a self-checking testbench for an external simulator.

Run:  python examples/verification_flow.py
"""

from repro.core import synthesize
from repro.datapath import build_netlist
from repro.lang import compile_source
from repro.rtl import emit_testbench, emit_verilog
from repro.scheduling import ResourceConstraints
from repro.sim import (
    check_behavioral_equivalence,
    check_equivalence,
    default_vectors,
)
from repro.transforms import optimize
from repro.workloads import SQRT_SOURCE


def main() -> None:
    # 1. Verify the transformations.
    specification = compile_source(SQRT_SOURCE)
    implementation = compile_source(SQRT_SOURCE)
    report = optimize(implementation, unroll=True)
    print(f"transformations applied: {report}")
    equivalence = check_behavioral_equivalence(
        specification, implementation
    )
    print(
        f"1. optimized CDFG == specification on "
        f"{equivalence.vectors} vectors: {equivalence.equivalent}"
    )
    print()

    # 2. Verify the implementation.
    design = synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
    )
    rtl_report = check_equivalence(design)
    print(
        f"2. RTL == behavior on {rtl_report.vectors} vectors: "
        f"{rtl_report.equivalent} "
        f"(worst-case {rtl_report.max_cycles} cycles)"
    )
    print()
    print("   design-process log:")
    for line in design.log:
        print(f"     {line}")
    print()

    # 3. Downstream artifacts.
    netlist = build_netlist(design)
    print(f"3. {netlist.stats()}")
    verilog = emit_verilog(design)
    vectors = default_vectors(design.cdfg, count=4)
    testbench = emit_testbench(design, vectors)
    print(
        f"   Verilog: {len(verilog.splitlines())} lines; "
        f"testbench: {len(testbench.splitlines())} lines over "
        f"{len(vectors)} vectors"
    )
    print()
    print("   testbench head:")
    for line in testbench.splitlines()[:12]:
        print(f"     {line}")


if __name__ == "__main__":
    main()
