"""Advanced scheduling features: timing windows and pipelined units.

Two §4-flavoured capabilities layered on the scheduling substrate:

* **designer timing constraints** (Nestor/Borriello interface
  constraints): min/max windows between operation start steps, honoured
  by the constructive schedulers (minimums) and optimally by
  branch-and-bound (full windows);
* **pipelined functional units** (the Sehwa hardware model): a unit
  with latency 3 but occupancy 1 accepts a new operation every cycle.

Run:  python examples/advanced_scheduling.py
"""

from repro.ir import OpKind
from repro.scheduling import (
    BranchAndBoundScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TimingConstraint,
    TypedFUModel,
)
from repro.workloads import fig3_cdfg, fir_block_cdfg


def timing_windows() -> None:
    print("== designer timing windows (Fig. 3 graph) ==")
    cdfg = fig3_cdfg()
    ops = list(cdfg.blocks()[0].ops)
    muls = [op.id for op in ops if op.kind is OpKind.MUL]

    unconstrained = SchedulingProblem(
        ops, TypedFUModel(single_cycle=True),
        ResourceConstraints({"mul": 1, "add": 1}),
    )
    baseline = ListScheduler(unconstrained).schedule()
    print(f"  baseline list schedule: {baseline.length} steps; "
          f"muls at {[baseline.start[m] for m in muls]}")

    # Interface protocol: the second multiply must start exactly two
    # steps after the first.
    windowed = SchedulingProblem(
        ops, TypedFUModel(single_cycle=True),
        ResourceConstraints({"mul": 1, "add": 1}),
        timing_constraints=[
            TimingConstraint(muls[0], muls[1], min_offset=2,
                             max_offset=2)
        ],
    )
    schedule = BranchAndBoundScheduler(windowed).schedule()
    schedule.validate()
    print(f"  with window [2,2] between the multiplies: "
          f"{schedule.length} steps; muls at "
          f"{[schedule.start[m] for m in muls]}")
    print()


def pipelined_units() -> None:
    print("== pipelined multiplier (latency 3, occupancy 1) ==")
    for label, model in (
        ("blocking", TypedFUModel(delays={"mul": 3})),
        ("pipelined", TypedFUModel(delays={"mul": 3},
                                   pipelined_classes={"mul"})),
    ):
        cdfg = fir_block_cdfg(4)
        problem = SchedulingProblem.from_block(
            cdfg.blocks()[0], model,
            ResourceConstraints({"mul": 1, "add": 1}),
        )
        schedule = ListScheduler(problem).schedule()
        schedule.validate()
        mul_starts = sorted(
            schedule.start[op_id]
            for op_id in problem.compute_op_ids()
            if problem.op_class(op_id) == "mul"
        )
        print(f"  {label:>9}: schedule {schedule.length} steps, "
              f"multiply issue slots {mul_starts}, "
              f"multipliers used: "
              f"{schedule.resource_usage()['mul']}")
    print("  (one pipelined multiplier issues back-to-back while "
          "results still take 3 cycles)")


if __name__ == "__main__":
    timing_windows()
    pipelined_units()
