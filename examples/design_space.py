"""Design-space exploration: the paper's §1.2 promise, executable.

"A good synthesis system can produce several designs for the same
specification in a reasonable amount of time.  This allows the
developer to explore different trade-offs between cost, speed, power
and so on."

This example sweeps the functional-unit budget for the HAL differential
equation benchmark, prints the measured (area, cycles, latency) of
every design point, marks the Pareto front, and cross-checks each point
by RTL co-simulation.

Run:  python examples/design_space.py
"""

from repro.core import SynthesisOptions
from repro.explore import explore_fu_range
from repro.sim import check_equivalence
from repro.workloads import DIFFEQ_SOURCE, diffeq_inputs


def main() -> None:
    print("HAL differential equation, universal-FU budget sweep")
    result = explore_fu_range(
        DIFFEQ_SOURCE,
        fu_limits=[1, 2, 3, 4, 6],
        options=SynthesisOptions(),
        vectors=[diffeq_inputs(4)],
    )
    print(result.table())
    print()

    print("verifying every explored design by co-simulation:")
    for point in result.points:
        report = check_equivalence(
            point.design,
            vectors=[diffeq_inputs(k) for k in (1, 4)],
        )
        status = "PASS" if report.equivalent else "FAIL"
        print(f"  {point.constraints}: {status}")
    print()

    front = result.pareto
    print(f"Pareto-optimal points ({len(front)}):")
    for point in front:
        print(f"  {point.row()}")
    slowest = max(result.points, key=lambda p: p.latency_ns)
    fastest = min(result.points, key=lambda p: p.latency_ns)
    print(
        f"\nspeedup across the space: "
        f"{slowest.latency_ns / fastest.latency_ns:.2f}x "
        f"(area ratio "
        f"{fastest.area / slowest.area:.2f}x)"
    )


if __name__ == "__main__":
    main()
