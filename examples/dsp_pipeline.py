"""DSP scenario: synthesizing and pipelining an FIR filter.

The tutorial points at digital signal processing as the domain where
domain-narrowed HLS first succeeded (CATHEDRAL, Sehwa).  This example:

1. synthesizes the loop-form FIR filter end to end and verifies it by
   co-simulation against the behavioral model;
2. pipelines the unrolled, feed-forward FIR kernel Sehwa-style,
   printing the hardware-vs-throughput trade-off table.

Run:  python examples/dsp_pipeline.py
"""

from repro.core import synthesize
from repro.pipeline import explore_pipeline, find_best_pipeline
from repro.scheduling import (
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.sim import BehavioralSimulator, RTLSimulator
from repro.workloads import fir_block_cdfg, fir_source

TAPS = 8
COEFFS = [0.5, 0.25, 0.125, 0.0625, 0.0625, 0.125, 0.25, 0.5]


def loop_fir() -> None:
    print(f"== {TAPS}-tap FIR, loop form, end to end ==")
    design = synthesize(fir_source(TAPS))
    print(design.report())

    window = [0.0, 1.0, 0.5, 0.25, 0.0, 0.0, 1.0, 1.0]
    memories = {"c": COEFFS, "s": window}
    behavioral = BehavioralSimulator(design.cdfg).run(
        {"x": 1.0}, memories
    )
    simulator = RTLSimulator(design)
    rtl = simulator.run({"x": 1.0}, memories)
    status = "PASS" if behavioral == rtl else "FAIL"
    print(f"  y = {rtl['y']:.6f} in {simulator.cycles} cycles "
          f"(behavioral match: {status})")
    print()


def pipelined_fir() -> None:
    print(f"== {TAPS}-tap FIR, unrolled and pipelined (Sehwa) ==")
    model = TypedFUModel(delays={"mul": 2})

    def make_problem(constraints):
        cdfg = fir_block_cdfg(TAPS)
        return SchedulingProblem.from_block(
            cdfg.blocks()[0], model, constraints
        )

    points = explore_pipeline(
        make_problem,
        [
            {"mul": 1, "add": 1},
            {"mul": 2, "add": 1},
            {"mul": 2, "add": 2},
            {"mul": 4, "add": 2},
            {"mul": 8, "add": 4},
        ],
    )
    for point in points:
        print(f"  {point.row()}")
    print()

    best = find_best_pipeline(
        make_problem(ResourceConstraints({"mul": 4, "add": 2}))
    )
    print("  reservation table at II="
          f"{best.initiation_interval} (4 multipliers, 2 adders):")
    usage = best.modulo_usage()
    for slot in range(best.initiation_interval):
        cells = [
            f"{cls}x{usage[(slot, cls)]}"
            for (s, cls) in sorted(usage)
            if s == slot
        ]
        print(f"    slot {slot}: {', '.join(cells) or '-'}")


if __name__ == "__main__":
    loop_fir()
    pipelined_fir()
