"""Quickstart: behavioral source in, verified RTL design out.

Runs the complete HLS flow of the DAC'88 tutorial on its own running
example — square root by Newton's method — and shows each artifact:
the optimized CDFG, the schedule, the datapath allocation, the FSM
controller, the equivalence proof and the emitted Verilog.

Run:  python examples/quickstart.py
"""

from repro import synthesize
from repro.rtl import emit_verilog
from repro.scheduling import ResourceConstraints
from repro.sim import RTLSimulator, check_equivalence
from repro.workloads import SQRT_SOURCE


def main() -> None:
    print("Behavioral specification (paper Fig. 1):")
    print(SQRT_SOURCE)

    # Synthesize with the paper's two-functional-unit budget.
    design = synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
    )
    print(design.report())
    print()

    # Every block's schedule, paper-style.
    for block_id, schedule in design.schedules.items():
        print(schedule.table())
        print(design.allocations[block_id].report())
        print()

    # The controller.
    print(f"FSM: {design.fsm.state_count} states")
    for state in design.fsm.states:
        transition = state.transition
        if transition.unconditional:
            target = (
                f"-> S{transition.if_true}"
                if transition.if_true is not None
                else "-> done"
            )
        else:
            target = (
                f"-> S{transition.if_true} if {transition.cond!r} "
                f"else S{transition.if_false}"
            )
            target = target.replace("None", "done")
        print(f"  S{state.id} ({state.block_name}#{state.step}) {target}")
    print()

    # Verification: the synthesized design computes the specification.
    report = check_equivalence(design)
    print(
        f"co-simulation: RTL == behavior on {report.vectors} vectors "
        f"-> {'PASS' if report.equivalent else 'FAIL'}"
    )

    simulator = RTLSimulator(design)
    out = simulator.run({"X": 0.5})
    print(
        f"sqrt(0.5) = {out['Y']:.6f} in {simulator.cycles} cycles "
        "(the paper's 2 + 4x2 = 10)"
    )
    print()

    verilog = emit_verilog(design)
    print("Verilog (first 25 lines):")
    for line in verilog.splitlines()[:25]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
