"""Scheduling gallery: every scheduler family on the paper's figures.

Walks through §3.1 of the tutorial with running code:

* Fig. 3 — ASAP scheduling loses a step when a non-critical operation
  blocks the critical path;
* Fig. 4 — list scheduling (path-length priority) recovers the optimum;
* Fig. 5 — force-directed scheduling's distribution graph and the
  balancing move;
* EXPL-style exhaustive search vs branch-and-bound, with the visited
  state counts that motivate pruning.

Run:  python examples/scheduling_gallery.py
"""

from repro.ir import OpKind
from repro.scheduling import (
    ASAPScheduler,
    BranchAndBoundScheduler,
    ExhaustiveScheduler,
    ForceDirectedScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
    compute_time_frames,
)
from repro.scheduling.force_directed import distribution_graph
from repro.workloads import fig3_cdfg, fig5_cdfg

UNIT = TypedFUModel(single_cycle=True)


def fig3_fig4() -> None:
    print("== Fig. 3 / Fig. 4: ASAP vs list scheduling ==")
    cdfg = fig3_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], UNIT, ResourceConstraints({"mul": 1, "add": 1})
    )
    for scheduler in (ASAPScheduler(problem),
                      ListScheduler(problem, "path_length")):
        schedule = scheduler.schedule()
        schedule.validate()
        print(schedule.table())
        print()


def fig5() -> None:
    print("== Fig. 5: force-directed scheduling ==")
    cdfg = fig5_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], UNIT, time_limit=3
    )
    frames = compute_time_frames(problem, 3)
    adds = [op.id for op in problem.ops if op.kind is OpKind.ADD]
    for name, op_id in zip(("a1", "a2", "a3"), adds):
        print(f"  {name}: legal steps {list(frames.frame(op_id))}")
    print(f"  add distribution graph: "
          f"{distribution_graph(problem, frames, 'add')}")
    schedule = ForceDirectedScheduler(problem, deadline=3).schedule()
    print(f"  balanced: a3 placed at step {schedule.start[adds[2]]}, "
          f"adders needed: {schedule.resource_usage()['add']}")
    print()


def exhaustive_vs_bnb() -> None:
    print("== EXPL exhaustive search vs branch-and-bound ==")
    cdfg = fig5_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], UNIT, ResourceConstraints({"add": 1, "mul": 2})
    )
    exhaustive = ExhaustiveScheduler(problem)
    exhaustive_schedule = exhaustive.schedule()
    bnb = BranchAndBoundScheduler(problem)
    bnb_schedule = bnb.schedule()
    print(f"  exhaustive: {exhaustive_schedule.length} steps, "
          f"{exhaustive.states_visited} states visited")
    print(f"  branch&bound: {bnb_schedule.length} steps, "
          f"{bnb.states_visited} states visited")
    print("  same optimum, "
          f"{exhaustive.states_visited / max(bnb.states_visited, 1):.1f}x "
          "less search with pruning")
    print()


if __name__ == "__main__":
    fig3_fig4()
    fig5()
    exhaustive_vs_bnb()
